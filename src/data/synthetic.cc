#include "data/synthetic.h"

#include <algorithm>

#include "kg/meta_graph.h"
#include "util/mathutil.h"
#include "util/rng.h"

namespace imdpp::data {

namespace {

/// The six standard meta-graphs, in a fixed order so prefix subsets are
/// meaningful: per relationship kind, most informative first.
///   C: shared feature; also-bought; shared feature AND shared brand.
///   S: shared category; also-viewed; shared brand.
std::vector<kg::MetaGraph> StandardMetas(kg::KnowledgeGraph& g,
                                         const KgTypeNames& t) {
  using kg::RelationKind;
  std::vector<kg::MetaGraph> metas;
  kg::MetaGraph shared_feature = kg::SharedNeighborMeta(
      g, "C:shared-" + t.feature, RelationKind::kComplementary, t.supports,
      t.feature);
  kg::MetaGraph shared_brand_c = kg::SharedNeighborMeta(
      g, "brand-leg", RelationKind::kComplementary, t.has_brand, t.brand);
  metas.push_back(shared_feature);
  metas.push_back(kg::SharedNeighborMeta(g, "S:shared-" + t.category,
                                         RelationKind::kSubstitutable,
                                         t.in_category, t.category));
  metas.push_back(kg::DirectEdgeMeta(g, "C:" + t.also_bought,
                                     RelationKind::kComplementary,
                                     t.also_bought));
  metas.push_back(kg::DirectEdgeMeta(g, "S:" + t.also_viewed,
                                     RelationKind::kSubstitutable,
                                     t.also_viewed));
  metas.push_back(kg::ConjunctionMeta(
      "C:shared-" + t.feature + "-and-" + t.brand,
      RelationKind::kComplementary, {shared_feature, shared_brand_c}));
  metas.push_back(kg::SharedNeighborMeta(g, "S:shared-" + t.brand,
                                         RelationKind::kSubstitutable,
                                         t.has_brand, t.brand));
  return metas;
}

}  // namespace

Dataset GenerateSynthetic(const SyntheticSpec& spec) {
  IMDPP_CHECK_GT(spec.num_items, 1);
  IMDPP_CHECK_GT(spec.num_users, 1);
  Rng rng(spec.seed);
  Dataset ds;
  ds.name = spec.name;
  ds.directed_friendship = spec.directed;

  // --- knowledge graph -----------------------------------------------------
  ds.kg = std::make_unique<kg::KnowledgeGraph>(spec.types.item);
  kg::KnowledgeGraph& g = *ds.kg;
  std::vector<kg::KgNodeId> items, features, brands, categories;
  for (int i = 0; i < spec.num_items; ++i) {
    items.push_back(
        g.AddNode(spec.types.item, spec.types.item + std::to_string(i)));
  }
  for (int i = 0; i < spec.num_features; ++i) {
    features.push_back(
        g.AddNode(spec.types.feature, spec.types.feature + std::to_string(i)));
  }
  for (int i = 0; i < spec.num_brands; ++i) {
    brands.push_back(
        g.AddNode(spec.types.brand, spec.types.brand + std::to_string(i)));
  }
  for (int i = 0; i < spec.num_categories; ++i) {
    categories.push_back(g.AddNode(spec.types.category,
                                   spec.types.category + std::to_string(i)));
  }

  // Per-item attributes. Categories partition items; brands cluster within
  // a category; features are drawn with category affinity so shared-feature
  // complementarity concentrates in themed groups.
  std::vector<int> item_category(spec.num_items);
  for (int i = 0; i < spec.num_items; ++i) {
    int cat = static_cast<int>(rng.NextBelow(spec.num_categories));
    item_category[i] = cat;
    g.AddEdge(items[i], categories[cat], spec.types.in_category);
    int brand = (cat + static_cast<int>(rng.NextBelow(
                           std::max(1, spec.num_brands / 2)))) %
                spec.num_brands;
    g.AddEdge(items[i], brands[brand], spec.types.has_brand);
    for (int f = 0; f < spec.features_per_item; ++f) {
      // Half the features come from a category-themed block.
      int feat;
      if (rng.NextBool(0.5) && spec.num_features >= spec.num_categories) {
        int block = spec.num_features / spec.num_categories;
        feat = cat * block + static_cast<int>(rng.NextBelow(
                                 std::max(1, block)));
      } else {
        feat = static_cast<int>(rng.NextBelow(spec.num_features));
      }
      g.AddEdge(items[i], features[feat], spec.types.supports);
    }
  }
  // Direct item-item edges: also-bought across categories (complementary),
  // also-viewed within a category (substitutable alternatives).
  for (int i = 0; i < spec.num_items; ++i) {
    for (int k = 0; k < spec.also_bought_per_item; ++k) {
      int j = static_cast<int>(rng.NextBelow(spec.num_items));
      if (j != i) g.AddEdge(items[i], items[j], spec.types.also_bought);
    }
    for (int k = 0; k < spec.also_viewed_per_item; ++k) {
      // Rejection-sample a same-category partner.
      for (int tries = 0; tries < 16; ++tries) {
        int j = static_cast<int>(rng.NextBelow(spec.num_items));
        if (j != i && item_category[j] == item_category[i]) {
          g.AddEdge(items[i], items[j], spec.types.also_viewed);
          break;
        }
      }
    }
  }

  std::vector<kg::MetaGraph> metas = StandardMetas(g, spec.types);
  ds.relevance = std::make_unique<kg::RelevanceModel>(
      kg::RelevanceModel::FromKg(g, std::move(metas), spec.relevance_kappa));

  // --- social network ------------------------------------------------------
  graph::TopologyConfig tcfg;
  tcfg.num_users = spec.num_users;
  tcfg.mean_influence = spec.mean_influence;
  tcfg.directed = spec.directed;
  tcfg.seed = SplitMix64(spec.seed ^ 0x50c1a1ULL);
  graph::SocialGraph social;
  switch (spec.topology) {
    case SocialTopology::kPreferentialAttachment:
      social = graph::MakePreferentialAttachment(tcfg, spec.pa_edges_per_node);
      break;
    case SocialTopology::kSmallWorld:
      social = graph::MakeSmallWorld(tcfg, spec.sw_neighbors, spec.sw_rewire);
      break;
    case SocialTopology::kCommunity:
      social = graph::MakeCommunityGraph(tcfg, spec.community_blocks,
                                         spec.community_p_in,
                                         spec.community_p_out);
      break;
  }
  ds.social = std::make_unique<graph::SocialGraph>(std::move(social));

  // --- item importance -----------------------------------------------------
  ds.importance.resize(spec.num_items);
  for (int i = 0; i < spec.num_items; ++i) {
    ds.importance[i] =
        spec.importance == ImportanceKind::kLogNormalPrice
            ? rng.NextLogNormal(spec.importance_mu, spec.importance_sigma)
            : rng.NextRange(0.1, 1.0);
  }

  // --- user preferences, perceptions, costs --------------------------------
  const int v = spec.num_users;
  const int ni = spec.num_items;
  const int nm = ds.relevance->NumMetas();
  ds.base_pref.resize(static_cast<size_t>(v) * ni);
  ds.cost.resize(static_cast<size_t>(v) * ni);
  ds.wmeta0.resize(static_cast<size_t>(v) * nm);
  std::vector<float> raw_cost(static_cast<size_t>(v) * ni);
  for (int u = 0; u < v; ++u) {
    int interest = static_cast<int>(rng.NextBelow(spec.num_categories));
    for (int x = 0; x < ni; ++x) {
      double p = rng.NextRange(spec.base_pref_lo, spec.base_pref_hi);
      if (item_category[x] == interest) {
        p += spec.interest_boost * rng.NextRange(0.5, 1.0);
      }
      ds.base_pref[static_cast<size_t>(u) * ni + x] =
          static_cast<float>(Clip01(p));
    }
    for (int m = 0; m < nm; ++m) {
      ds.wmeta0[static_cast<size_t>(u) * nm + m] =
          static_cast<float>(rng.NextRange(spec.wmeta_lo, spec.wmeta_hi));
    }
  }
  // Costs ∝ out-degree / preference (Sec. VI-A), rescaled to the target
  // median so budget sweeps are comparable across dataset sizes.
  for (int u = 0; u < v; ++u) {
    double deg = 1.0 + ds.social->OutDegree(u);
    for (int x = 0; x < ni; ++x) {
      double pref = ds.base_pref[static_cast<size_t>(u) * ni + x];
      raw_cost[static_cast<size_t>(u) * ni + x] =
          static_cast<float>(deg / (0.15 + pref));
    }
  }
  std::vector<float> sorted = raw_cost;
  std::nth_element(sorted.begin(), sorted.begin() + sorted.size() / 2,
                   sorted.end());
  double median = sorted[sorted.size() / 2];
  double scale = median > 0.0 ? spec.target_median_cost / median : 1.0;
  for (size_t i = 0; i < raw_cost.size(); ++i) {
    ds.cost[i] = static_cast<float>(
        std::max(0.5, static_cast<double>(raw_cost[i]) * scale));
  }
  return ds;
}

}  // namespace imdpp::data
