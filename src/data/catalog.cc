#include "data/catalog.h"

#include <algorithm>
#include <cmath>

#include "graph/graph_builder.h"
#include "kg/meta_graph.h"

namespace imdpp::data {

namespace {

int Scaled(int base, double scale) {
  return std::max(4, static_cast<int>(std::lround(base * scale)));
}

}  // namespace

Dataset MakeAmazonLike(double scale, uint64_t seed) {
  SyntheticSpec spec;
  spec.name = "amazon";
  spec.seed = seed;
  spec.num_users = Scaled(800, scale);
  spec.num_items = Scaled(64, scale);
  spec.num_features = Scaled(48, scale);
  spec.num_brands = Scaled(12, scale);
  spec.num_categories = Scaled(8, scale);
  spec.topology = SocialTopology::kPreferentialAttachment;
  spec.directed = true;  // Pokec friendships are directed (Table II)
  spec.pa_edges_per_node = 4;
  spec.mean_influence = 0.12;  // Table II order: amazon 3rd (0.050 scaled)
  spec.importance = ImportanceKind::kLogNormalPrice;
  spec.importance_mu = 0.6;  // Table II: avg importance 1.8
  return GenerateSynthetic(spec);
}

Dataset MakeYelpLike(double scale, uint64_t seed) {
  SyntheticSpec spec;
  spec.name = "yelp";
  spec.seed = seed;
  spec.num_users = Scaled(400, scale);
  spec.num_items = Scaled(48, scale);
  spec.num_features = Scaled(36, scale);  // amenities
  spec.num_brands = Scaled(10, scale);    // chains
  spec.num_categories = Scaled(8, scale); // cuisine categories
  KgTypeNames t;
  t.item = "BUSINESS";
  t.feature = "AMENITY";
  t.brand = "CITY";
  t.category = "CATEGORY";
  t.supports = "OFFERS";
  t.has_brand = "LOCATED_IN";
  t.in_category = "IN_CATEGORY";
  t.also_bought = "VISITED_TOGETHER";
  t.also_viewed = "BROWSED_TOGETHER";
  spec.types = t;
  spec.topology = SocialTopology::kSmallWorld;
  spec.sw_neighbors = 5;
  spec.sw_rewire = 0.15;
  spec.mean_influence = 0.18;  // Table II order: yelp strongest (0.121 scaled)
  spec.importance_mu = 0.45;    // Table II: avg importance 1.6
  return GenerateSynthetic(spec);
}

Dataset MakeDoubanLike(double scale, uint64_t seed) {
  SyntheticSpec spec;
  spec.name = "douban";
  spec.seed = seed;
  spec.num_users = Scaled(1400, scale);
  spec.num_items = Scaled(96, scale);
  spec.num_features = Scaled(64, scale);  // tags
  spec.num_brands = Scaled(16, scale);    // authors/artists
  spec.num_categories = Scaled(10, scale);
  KgTypeNames t;
  t.item = "MEDIA";
  t.feature = "TAG";
  t.brand = "AUTHOR";
  t.category = "GENRE";
  t.supports = "TAGGED";
  t.has_brand = "CREATED_BY";
  t.in_category = "IN_GENRE";
  t.also_bought = "COLLECTED_TOGETHER";
  t.also_viewed = "RATED_TOGETHER";
  spec.types = t;
  // Books/songs are complementary-heavy (Sec. VI-B): more also-bought
  // edges, fewer substitutable co-views.
  spec.also_bought_per_item = 4;
  spec.also_viewed_per_item = 1;
  spec.topology = SocialTopology::kPreferentialAttachment;
  spec.pa_edges_per_node = 5;
  spec.mean_influence = 0.06;  // Table II order: douban weakest (0.011 scaled)
  spec.importance_mu = 0.7;     // Table II: avg importance 2.1
  return GenerateSynthetic(spec);
}

Dataset MakeGowallaLike(double scale, uint64_t seed) {
  SyntheticSpec spec;
  spec.name = "gowalla";
  spec.seed = seed;
  spec.num_users = Scaled(1000, scale);
  spec.num_items = Scaled(80, scale);
  spec.num_features = Scaled(40, scale);
  spec.num_brands = Scaled(12, scale);
  spec.num_categories = Scaled(8, scale);
  KgTypeNames t;
  t.item = "SPOT";
  t.feature = "AMENITY";
  t.brand = "REGION";
  t.category = "SPOT_TYPE";
  t.supports = "PROVIDES";
  t.has_brand = "IN_REGION";
  t.in_category = "OF_TYPE";
  t.also_bought = "CHECKED_IN_TOGETHER";
  t.also_viewed = "NEARBY";
  spec.types = t;
  spec.topology = SocialTopology::kPreferentialAttachment;
  spec.pa_edges_per_node = 3;
  spec.mean_influence = 0.15;  // Table II order: gowalla 2nd (0.092 scaled)
  spec.importance = ImportanceKind::kUniformRandom;  // site offline
  return GenerateSynthetic(spec);
}

Dataset MakeFlixsterLike(double scale, uint64_t seed) {
  SyntheticSpec spec;
  spec.name = "flixster";
  spec.seed = seed;
  spec.num_users = Scaled(600, scale);
  spec.num_items = Scaled(56, scale);
  spec.num_features = Scaled(40, scale);  // keywords
  spec.num_brands = Scaled(10, scale);    // studios
  spec.num_categories = Scaled(8, scale); // genres
  KgTypeNames t;
  t.item = "MOVIE";
  t.feature = "KEYWORD";
  t.brand = "STUDIO";
  t.category = "GENRE";
  t.supports = "ABOUT";
  t.has_brand = "PRODUCED_BY";
  t.in_category = "IN_GENRE";
  t.also_bought = "WATCHED_TOGETHER";
  t.also_viewed = "SIMILAR_TO";
  spec.types = t;
  // Movies compete for the same watch slot: substitutable-heavy direct
  // edges, few complementary ones.
  spec.also_bought_per_item = 1;
  spec.also_viewed_per_item = 4;
  spec.topology = SocialTopology::kSmallWorld;
  spec.sw_neighbors = 6;
  spec.sw_rewire = 0.2;
  spec.mean_influence = 0.1;
  spec.importance = ImportanceKind::kUniformRandom;  // tickets cost alike
  return GenerateSynthetic(spec);
}

Dataset MakeSmallAmazonSample(uint64_t seed) {
  SyntheticSpec spec;
  spec.name = "amazon-100";
  spec.seed = seed;
  spec.num_users = 100;
  spec.num_items = 12;
  spec.num_features = 10;
  spec.num_brands = 4;
  spec.num_categories = 3;
  spec.topology = SocialTopology::kPreferentialAttachment;
  spec.directed = true;
  spec.pa_edges_per_node = 5;
  spec.mean_influence = 0.30;  // denser influence so OPT is separable
  spec.importance_mu = 0.5;
  spec.target_median_cost = 25.0;
  Dataset ds = GenerateSynthetic(spec);
  // Compress the cost spread so the pruned-exhaustive OPT of Fig. 8 (which
  // bounds the seed count, not the spend) upper-bounds the heuristics at
  // the paper's budget range (b = 50..125 buys 2..4 seeds).
  for (float& c : ds.cost) c = std::clamp(c, 22.0f, 34.0f);
  return ds;
}

Dataset MakeClassroom(int class_index, uint64_t seed) {
  IMDPP_CHECK(class_index >= 0 && class_index < 5);
  // Table III: classes A..E.
  constexpr int kUsers[5] = {33, 26, 22, 20, 20};
  SyntheticSpec spec;
  spec.name = std::string("class-") + static_cast<char>('A' + class_index);
  spec.seed = SplitMix64(seed + static_cast<uint64_t>(class_index));
  spec.num_users = kUsers[class_index];
  spec.num_items = 30;  // 30 elective courses
  spec.num_features = 24;
  spec.num_brands = 10;
  spec.num_categories = 6;
  KgTypeNames t;
  t.item = "COURSE";
  t.feature = "KEYWORD";
  t.brand = "TEACHER_FIELD";
  t.category = "CURRICULUM_FIELD";
  t.supports = "COVERS";
  t.has_brand = "TAUGHT_IN";
  t.in_category = "BELONGS_TO";
  t.also_bought = "FOLLOWS";  // prerequisite chains are complementary
  t.also_viewed = "OVERLAPS"; // overlapping syllabi are substitutable
  spec.types = t;
  spec.topology = SocialTopology::kCommunity;
  spec.community_blocks = 3;      // study subgroups inside a class
  spec.community_p_in = 0.65;     // Table III edge densities
  spec.community_p_out = 0.25;
  spec.mean_influence = 0.1;
  spec.base_pref_hi = 0.3;
  spec.importance_mu = 0.0;  // courses are equally valued, price-free
  spec.importance_sigma = 0.2;
  spec.target_median_cost = 12.0;  // b = 50 buys a few student seeds
  return GenerateSynthetic(spec);
}

Dataset MakeFig1Toy() {
  Dataset ds;
  ds.name = "fig1-toy";
  ds.kg = std::make_unique<kg::KnowledgeGraph>("ITEM");
  kg::KnowledgeGraph& g = *ds.kg;
  kg::KgNodeId iphone = g.AddNode("ITEM", "iPhone");
  kg::KgNodeId airpods = g.AddNode("ITEM", "AirPods");
  kg::KgNodeId charger = g.AddNode("ITEM", "WirelessCharger");
  kg::KgNodeId cable = g.AddNode("ITEM", "ChargingCable");
  kg::KgNodeId bluetooth = g.AddNode("FEATURE", "Bluetooth");
  kg::KgNodeId qi = g.AddNode("FEATURE", "QiStandard");
  kg::KgNodeId apple = g.AddNode("BRAND", "AppleInc");
  kg::KgNodeId accessory = g.AddNode("CATEGORY", "ChargingAccessory");
  g.AddEdge(iphone, bluetooth, "SUPPORTS");
  g.AddEdge(airpods, bluetooth, "SUPPORTS");
  g.AddEdge(iphone, qi, "SUPPORTS");
  g.AddEdge(charger, qi, "SUPPORTS");
  g.AddEdge(iphone, apple, "HAS_BRAND");
  g.AddEdge(airpods, apple, "HAS_BRAND");
  g.AddEdge(charger, accessory, "IN_CATEGORY");
  g.AddEdge(cable, accessory, "IN_CATEGORY");
  g.AddEdge(iphone, airpods, "ALSO_BOUGHT");

  std::vector<kg::MetaGraph> metas;
  kg::MetaGraph m1 = kg::SharedNeighborMeta(
      g, "m1:shared-feature", kg::RelationKind::kComplementary, "SUPPORTS",
      "FEATURE");
  kg::MetaGraph brand_leg = kg::SharedNeighborMeta(
      g, "brand-leg", kg::RelationKind::kComplementary, "HAS_BRAND", "BRAND");
  kg::MetaGraph m2 =
      kg::DirectEdgeMeta(g, "m2:also-bought", kg::RelationKind::kComplementary,
                         "ALSO_BOUGHT");
  kg::MetaGraph m3 = kg::ConjunctionMeta(
      "m3:feature-and-brand", kg::RelationKind::kComplementary, {m1, brand_leg});
  kg::MetaGraph ms = kg::SharedNeighborMeta(
      g, "mS:shared-category", kg::RelationKind::kSubstitutable, "IN_CATEGORY",
      "CATEGORY");
  metas.push_back(std::move(m1));
  metas.push_back(std::move(m2));
  metas.push_back(std::move(m3));
  metas.push_back(std::move(ms));
  ds.relevance = std::make_unique<kg::RelevanceModel>(
      kg::RelevanceModel::FromKg(g, std::move(metas), 1.0));

  // Alice -> Bob, Cindy -> Bob (Fig. 2), plus a weak Bob -> Cindy tie.
  graph::GraphBuilder b(3);
  b.AddEdge(0, 1, 0.6);  // Alice -> Bob
  b.AddEdge(2, 1, 0.4);  // Cindy -> Bob
  b.AddEdge(1, 2, 0.2);  // Bob -> Cindy
  ds.social = std::make_unique<graph::SocialGraph>(b.Build());
  ds.directed_friendship = true;

  const int v = 3, ni = 4, nm = ds.relevance->NumMetas();
  ds.importance = {1.0, 0.5, 0.8, 0.3};
  ds.base_pref.assign(static_cast<size_t>(v) * ni, 0.1f);
  // Bob starts keen on the iPhone; Alice and Cindy already fans.
  ds.base_pref[1 * ni + 0] = 0.7f;  // Bob, iPhone
  ds.base_pref[0 * ni + 0] = 0.9f;  // Alice, iPhone
  ds.base_pref[2 * ni + 2] = 0.8f;  // Cindy, charger
  ds.cost.assign(static_cast<size_t>(v) * ni, 10.0f);
  ds.wmeta0.assign(static_cast<size_t>(v) * nm, 0.2f);
  return ds;
}

}  // namespace imdpp::data
