#include "data/dataset.h"

namespace imdpp::data {

diffusion::Problem Dataset::MakeProblem(double budget, int num_promotions,
                                        pin::PerceptionParams params) const {
  return MakeProblemWithRelevance(*relevance, budget, num_promotions, params);
}

diffusion::Problem Dataset::MakeProblemWithRelevance(
    const kg::RelevanceModel& relevance_override, double budget,
    int num_promotions, pin::PerceptionParams params,
    const std::vector<int>* meta_indices) const {
  diffusion::Problem p;
  p.graph = social.get();
  p.relevance = &relevance_override;
  p.params = params;
  p.importance = importance;
  p.base_pref = base_pref;
  p.cost = cost;
  p.budget = budget;
  p.num_promotions = num_promotions;
  // The weighting matrix must match the override's meta count; reuse the
  // dataset's initial weights for the shared prefix of metas.
  const int metas = relevance_override.NumMetas();
  const int own_metas = relevance->NumMetas();
  p.wmeta0.assign(static_cast<size_t>(NumUsers()) * metas, 0.0f);
  for (int u = 0; u < NumUsers(); ++u) {
    for (int m = 0; m < metas; ++m) {
      int src = meta_indices != nullptr ? (*meta_indices)[m] : m;
      if (src < 0 || src >= own_metas) continue;
      p.wmeta0[static_cast<size_t>(u) * metas + m] =
          wmeta0[static_cast<size_t>(u) * own_metas + src];
    }
  }
  p.Validate();
  return p;
}

}  // namespace imdpp::data
