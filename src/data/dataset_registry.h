// String-keyed dataset registry, mirroring api::PlannerRegistry: every
// catalog flavor registers a factory under a stable name, so harnesses,
// sweep configs and the imdpp CLI name datasets as data, not code:
//
//   data::Dataset ds = data::DatasetRegistry::MakeOrDie({"yelp-like", 0.5});
//
// Three name families resolve:
//   * registered keys  — "fig1-toy", "yelp-like", "amazon-like",
//     "douban-like", "gowalla-like", "flixster-like", "amazon-100",
//     "classroom-a".."classroom-e";
//   * "scale-<N>"      — a generic preferential-attachment synthetic with
//     N users (scalability sweeps without a bespoke flavor);
//   * file paths       — "path/to/spec.json" (or any name containing '/')
//     loads a data::SyntheticSpec from a JSON file, so a brand-new
//     workload is a config file away.
// Every lookup failure reports the sorted list of registered keys.
#ifndef IMDPP_DATA_DATASET_REGISTRY_H_
#define IMDPP_DATA_DATASET_REGISTRY_H_

#include <string>
#include <string_view>
#include <vector>

#include "data/synthetic.h"
#include "util/json.h"
#include "util/status.h"

namespace imdpp::data {

/// How to materialize a named dataset: a size multiplier applied to the
/// flavor's default user/item counts, and an RNG seed (0 = the flavor's
/// default, so identical specs are bit-reproducible).
struct DatasetSpec {
  std::string name = "yelp-like";
  double scale = 1.0;
  uint64_t seed = 0;
};

/// Parses "name" or "name@scale" (e.g. "yelp-like@0.5").
DatasetSpec ParseDatasetSpec(std::string_view text);

class DatasetRegistry {
 public:
  using Factory = Dataset (*)(double scale, uint64_t seed);

  /// Registers `factory` under `name`; duplicate names abort.
  static bool Register(std::string name, Factory factory);

  /// Materializes `spec` (registered key, scale-<N>, or JSON file path).
  /// Structured failures (ISSUE 8): an unknown name or missing spec file
  /// is kNotFound (the message lists the registered keys), a malformed
  /// spec file kInvalidArgument; *out is untouched on failure. Runs the
  /// data.load fault point before any build.
  static util::Status Make(const DatasetSpec& spec, Dataset* out);

  /// Like Make but aborts with the key listing on a miss.
  static Dataset MakeOrDie(const DatasetSpec& spec);

  static bool Has(std::string_view name);

  /// All registered keys, sorted (the name families "scale-<N>" and file
  /// paths resolve in Make but are not listed).
  static std::vector<std::string> Names();

  /// The failure message every lookup path prints: the unknown name plus
  /// the sorted registered keys and the recognized name families.
  static std::string UnknownMessage(std::string_view name);
};

/// Applies the members of a JSON object onto *spec (partial override:
/// absent keys keep their current values). Unknown keys or mistyped
/// values fail with kInvalidArgument naming the key.
util::Status ApplySyntheticSpecJson(const util::Json& obj,
                                    SyntheticSpec* spec);

/// Registers `fn` (callable as Dataset(double scale, uint64_t seed)) as a
/// dataset factory under `key`.
#define IMDPP_REGISTER_DATASET(key, fn)                                     \
  [[maybe_unused]] static const bool imdpp_dataset_registered_##fn =        \
      ::imdpp::data::DatasetRegistry::Register(                             \
          key, +[](double scale, uint64_t seed) -> ::imdpp::data::Dataset { \
            return fn(scale, seed);                                         \
          })

}  // namespace imdpp::data

#endif  // IMDPP_DATA_DATASET_REGISTRY_H_
