#include "data/dataset_registry.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>

#include "data/catalog.h"
#include "util/check.h"
#include "util/fault_injection.h"
#include "util/registry.h"
#include "util/retry.h"

namespace imdpp::data {

namespace {

// Typed façade over the shared util::Registry contract; same Meyers-
// singleton ordering guarantee as before the dedup.
util::Registry<DatasetRegistry::Factory>& Impl() {
  static auto* registry =
      new util::Registry<DatasetRegistry::Factory>("dataset");
  return *registry;
}

int Scaled(int base, double scale) {
  return std::max(4, static_cast<int>(std::lround(base * scale)));
}

/// The "scale-<N>" family: a generic preferential-attachment synthetic
/// sized for scalability sweeps — N users, item/feature counts that grow
/// sublinearly the way the catalog flavors do.
Dataset MakeScaleN(int num_users, uint64_t seed) {
  SyntheticSpec spec;
  spec.name = "scale-" + std::to_string(num_users);
  spec.seed = seed == 0 ? 77 : seed;
  spec.num_users = std::max(4, num_users);
  spec.num_items = std::max(8, num_users / 8);
  spec.num_features = std::max(6, (3 * spec.num_items) / 4);
  spec.num_brands = std::max(4, spec.num_items / 6);
  spec.num_categories = std::max(3, spec.num_items / 8);
  spec.topology = SocialTopology::kPreferentialAttachment;
  spec.pa_edges_per_node = 4;
  spec.mean_influence = 0.12;
  return GenerateSynthetic(spec);
}

/// scale-<N> → N; -1 when the name is not of that family.
int ParseScaleN(std::string_view name) {
  constexpr std::string_view kPrefix = "scale-";
  if (name.substr(0, kPrefix.size()) != kPrefix) return -1;
  std::string_view digits = name.substr(kPrefix.size());
  if (digits.empty()) return -1;
  int n = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') return -1;
    n = n * 10 + (c - '0');
    if (n > 10'000'000) return -1;  // sanity cap
  }
  return n;
}

bool LooksLikeSpecFile(std::string_view name) {
  return name.find('/') != std::string_view::npos ||
         (name.size() > 5 && name.substr(name.size() - 5) == ".json");
}

util::Status MakeFromSpecFile(const DatasetSpec& spec, Dataset* out) {
  std::ifstream in{std::string(spec.name)};
  if (!in) {
    return util::NotFoundError("cannot open dataset spec file \"" +
                               spec.name + "\"");
  }
  std::ostringstream text;
  text << in.rdbuf();
  util::Json parsed;
  std::string parse_error;
  if (!util::Json::Parse(text.str(), &parsed, &parse_error)) {
    return util::InvalidArgumentError(spec.name + ":" + parse_error);
  }
  SyntheticSpec synth;
  util::Status applied = ApplySyntheticSpecJson(parsed, &synth);
  if (!applied.ok()) {
    return util::Status(applied.code(), spec.name + ": " + applied.message());
  }
  if (spec.scale != 1.0) {
    synth.num_users = Scaled(synth.num_users, spec.scale);
    synth.num_items = Scaled(synth.num_items, spec.scale);
    synth.num_features = Scaled(synth.num_features, spec.scale);
    synth.num_brands = Scaled(synth.num_brands, spec.scale);
    synth.num_categories = Scaled(synth.num_categories, spec.scale);
  }
  if (spec.seed != 0) synth.seed = spec.seed;
  *out = GenerateSynthetic(synth);
  return util::OkStatus();
}

// ------------------------------------------------- built-in registrations
// Same-TU statics as the registry itself, so a static-archive link that
// pulls in any registry entry point keeps them alive.

Dataset Classroom(int index, uint64_t seed) {
  return MakeClassroom(index, seed == 0 ? 66 : seed);
}

const bool kBuiltinsRegistered = [] {
  auto reg = [](const char* name, DatasetRegistry::Factory f) {
    DatasetRegistry::Register(name, f);
  };
  reg("fig1-toy", +[](double, uint64_t) { return MakeFig1Toy(); });
  reg("amazon-like", +[](double s, uint64_t seed) {
    return MakeAmazonLike(s, seed == 0 ? 11 : seed);
  });
  reg("yelp-like", +[](double s, uint64_t seed) {
    return MakeYelpLike(s, seed == 0 ? 22 : seed);
  });
  reg("douban-like", +[](double s, uint64_t seed) {
    return MakeDoubanLike(s, seed == 0 ? 33 : seed);
  });
  reg("gowalla-like", +[](double s, uint64_t seed) {
    return MakeGowallaLike(s, seed == 0 ? 44 : seed);
  });
  reg("flixster-like", +[](double s, uint64_t seed) {
    return MakeFlixsterLike(s, seed == 0 ? 88 : seed);
  });
  reg("amazon-100", +[](double, uint64_t seed) {
    return MakeSmallAmazonSample(seed == 0 ? 55 : seed);
  });
  reg("classroom-a", +[](double, uint64_t seed) { return Classroom(0, seed); });
  reg("classroom-b", +[](double, uint64_t seed) { return Classroom(1, seed); });
  reg("classroom-c", +[](double, uint64_t seed) { return Classroom(2, seed); });
  reg("classroom-d", +[](double, uint64_t seed) { return Classroom(3, seed); });
  reg("classroom-e", +[](double, uint64_t seed) { return Classroom(4, seed); });
  return true;
}();

}  // namespace

DatasetSpec ParseDatasetSpec(std::string_view text) {
  DatasetSpec spec;
  const size_t at = text.rfind('@');
  if (at == std::string_view::npos) {
    spec.name = std::string(text);
    return spec;
  }
  spec.name = std::string(text.substr(0, at));
  const std::string scale_text(text.substr(at + 1));
  char* end = nullptr;
  const double scale = std::strtod(scale_text.c_str(), &end);
  if (end != nullptr && *end == '\0' && scale > 0.0) {
    spec.scale = scale;
  } else {
    spec.name = std::string(text);  // '@' was part of the name after all
  }
  return spec;
}

bool DatasetRegistry::Register(std::string name, Factory factory) {
  return Impl().Register(std::move(name), factory);
}

util::Status DatasetRegistry::Make(const DatasetSpec& spec, Dataset* out) {
  // The data.load fault point (ISSUE 8): transient codes are retried so an
  // armed `data.load:1:resource_exhausted` recovers on the second attempt.
  IMDPP_RETURN_IF_ERROR(util::RetryTransient(
      [] { return util::FaultInjector::Global().Hit("data.load"); }));
  if (const Factory* factory = Impl().Find(spec.name)) {
    *out = (*factory)(spec.scale, spec.seed);
    return util::OkStatus();
  }
  const int scale_n = ParseScaleN(spec.name);
  if (scale_n >= 0) {
    *out = MakeScaleN(static_cast<int>(std::lround(scale_n * spec.scale)),
                      spec.seed);
    return util::OkStatus();
  }
  if (LooksLikeSpecFile(spec.name)) {
    return MakeFromSpecFile(spec, out);
  }
  return util::NotFoundError(UnknownMessage(spec.name));
}

Dataset DatasetRegistry::MakeOrDie(const DatasetSpec& spec) {
  Dataset out;
  const util::Status status = Make(spec, &out);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    std::abort();
  }
  return out;
}

bool DatasetRegistry::Has(std::string_view name) { return Impl().Has(name); }

std::vector<std::string> DatasetRegistry::Names() { return Impl().Names(); }

std::string DatasetRegistry::UnknownMessage(std::string_view name) {
  return Impl().UnknownMessage(name) +
         " (also recognized: scale-<N>, a path to a SyntheticSpec .json)";
}

// --------------------------------------------------- SyntheticSpec ← JSON

namespace {

bool TypeNamesFromJson(const util::Json& obj, KgTypeNames* types,
                       std::string* error) {
  for (const auto& [key, value] : obj.members()) {
    std::string* slot = nullptr;
    if (key == "item") slot = &types->item;
    else if (key == "feature") slot = &types->feature;
    else if (key == "brand") slot = &types->brand;
    else if (key == "category") slot = &types->category;
    else if (key == "supports") slot = &types->supports;
    else if (key == "has_brand") slot = &types->has_brand;
    else if (key == "in_category") slot = &types->in_category;
    else if (key == "also_bought") slot = &types->also_bought;
    else if (key == "also_viewed") slot = &types->also_viewed;
    if (slot == nullptr) {
      *error = "unknown types key \"" + key + "\"";
      return false;
    }
    if (!value.is_string()) {
      *error = "types." + key + " must be a string";
      return false;
    }
    *slot = value.AsString();
  }
  return true;
}

bool ApplySyntheticSpecJsonImpl(const util::Json& obj, SyntheticSpec* spec,
                                std::string* error) {
  if (!obj.is_object()) {
    *error = "dataset spec must be a JSON object";
    return false;
  }
  for (const auto& [key, value] : obj.members()) {
    auto number = [&](auto* slot) {
      if (!value.is_number()) {
        *error = "\"" + key + "\" must be a number";
        return false;
      }
      *slot = static_cast<std::remove_pointer_t<decltype(slot)>>(
          value.AsDouble());
      return true;
    };
    if (key == "name") {
      if (!value.is_string()) {
        *error = "\"name\" must be a string";
        return false;
      }
      spec->name = value.AsString();
    } else if (key == "seed") {
      if (!number(&spec->seed)) return false;
    } else if (key == "num_items") {
      if (!number(&spec->num_items)) return false;
    } else if (key == "num_features") {
      if (!number(&spec->num_features)) return false;
    } else if (key == "num_brands") {
      if (!number(&spec->num_brands)) return false;
    } else if (key == "num_categories") {
      if (!number(&spec->num_categories)) return false;
    } else if (key == "features_per_item") {
      if (!number(&spec->features_per_item)) return false;
    } else if (key == "also_bought_per_item") {
      if (!number(&spec->also_bought_per_item)) return false;
    } else if (key == "also_viewed_per_item") {
      if (!number(&spec->also_viewed_per_item)) return false;
    } else if (key == "relevance_kappa") {
      if (!number(&spec->relevance_kappa)) return false;
    } else if (key == "num_users") {
      if (!number(&spec->num_users)) return false;
    } else if (key == "directed") {
      if (!value.is_bool()) {
        *error = "\"directed\" must be a bool";
        return false;
      }
      spec->directed = value.AsBool();
    } else if (key == "mean_influence") {
      if (!number(&spec->mean_influence)) return false;
    } else if (key == "pa_edges_per_node") {
      if (!number(&spec->pa_edges_per_node)) return false;
    } else if (key == "sw_neighbors") {
      if (!number(&spec->sw_neighbors)) return false;
    } else if (key == "sw_rewire") {
      if (!number(&spec->sw_rewire)) return false;
    } else if (key == "community_blocks") {
      if (!number(&spec->community_blocks)) return false;
    } else if (key == "community_p_in") {
      if (!number(&spec->community_p_in)) return false;
    } else if (key == "community_p_out") {
      if (!number(&spec->community_p_out)) return false;
    } else if (key == "base_pref_lo") {
      if (!number(&spec->base_pref_lo)) return false;
    } else if (key == "base_pref_hi") {
      if (!number(&spec->base_pref_hi)) return false;
    } else if (key == "interest_boost") {
      if (!number(&spec->interest_boost)) return false;
    } else if (key == "wmeta_lo") {
      if (!number(&spec->wmeta_lo)) return false;
    } else if (key == "wmeta_hi") {
      if (!number(&spec->wmeta_hi)) return false;
    } else if (key == "importance_mu") {
      if (!number(&spec->importance_mu)) return false;
    } else if (key == "importance_sigma") {
      if (!number(&spec->importance_sigma)) return false;
    } else if (key == "target_median_cost") {
      if (!number(&spec->target_median_cost)) return false;
    } else if (key == "topology") {
      if (!value.is_string()) {
        *error = "\"topology\" must be a string";
        return false;
      }
      const std::string& t = value.AsString();
      if (t == "preferential-attachment") {
        spec->topology = SocialTopology::kPreferentialAttachment;
      } else if (t == "small-world") {
        spec->topology = SocialTopology::kSmallWorld;
      } else if (t == "community") {
        spec->topology = SocialTopology::kCommunity;
      } else {
        *error = "unknown topology \"" + t +
                 "\" (expected preferential-attachment, small-world, "
                 "community)";
        return false;
      }
    } else if (key == "importance") {
      if (!value.is_string()) {
        *error = "\"importance\" must be a string";
        return false;
      }
      const std::string& k = value.AsString();
      if (k == "lognormal-price") {
        spec->importance = ImportanceKind::kLogNormalPrice;
      } else if (k == "uniform") {
        spec->importance = ImportanceKind::kUniformRandom;
      } else {
        *error = "unknown importance \"" + k +
                 "\" (expected lognormal-price, uniform)";
        return false;
      }
    } else if (key == "types") {
      if (!value.is_object()) {
        *error = "\"types\" must be an object";
        return false;
      }
      if (!TypeNamesFromJson(value, &spec->types, error)) return false;
    } else {
      *error = "unknown dataset spec key \"" + key + "\"";
      return false;
    }
  }
  return true;
}

}  // namespace

util::Status ApplySyntheticSpecJson(const util::Json& obj,
                                    SyntheticSpec* spec) {
  std::string error;
  if (!ApplySyntheticSpecJsonImpl(obj, spec, &error)) {
    return util::InvalidArgumentError(std::move(error));
  }
  return util::OkStatus();
}

}  // namespace imdpp::data
