// Configurable synthetic dataset generator.
//
// Substitution note (see DESIGN.md): the paper evaluates on crawled
// datasets (Amazon+Pokec, Yelp, Douban, Gowalla). We generate synthetic
// datasets that reproduce the structural features the algorithms consume:
//   * HIN-style KG with item / feature / brand / category node types and
//     typed edges, from which the six standard meta-graphs (three
//     complementary, three substitutable) derive the relevance matrices;
//   * heavy-tailed or small-world social graphs (directed for the
//     Amazon/Pokec flavor), with per-edge base influence strengths;
//   * interest-driven base preferences, price-like importances, and costs
//     c_{u,x} ∝ outdeg(u) / Ppref(u,x) exactly as Sec. VI-A prescribes.
#ifndef IMDPP_DATA_SYNTHETIC_H_
#define IMDPP_DATA_SYNTHETIC_H_

#include <string>

#include "data/dataset.h"
#include "graph/topology.h"

namespace imdpp::data {

/// KG node/edge type names, overridable so flavors read naturally
/// (e.g. the classroom datasets use COURSE / KEYWORD / TEACHER / FIELD).
struct KgTypeNames {
  std::string item = "ITEM";
  std::string feature = "FEATURE";
  std::string brand = "BRAND";
  std::string category = "CATEGORY";
  std::string supports = "SUPPORTS";
  std::string has_brand = "HAS_BRAND";
  std::string in_category = "IN_CATEGORY";
  std::string also_bought = "ALSO_BOUGHT";
  std::string also_viewed = "ALSO_VIEWED";
};

enum class SocialTopology { kPreferentialAttachment, kSmallWorld, kCommunity };
enum class ImportanceKind { kLogNormalPrice, kUniformRandom };

struct SyntheticSpec {
  std::string name = "synthetic";
  uint64_t seed = 1;

  // --- knowledge graph ---
  KgTypeNames types;
  int num_items = 40;
  int num_features = 30;
  int num_brands = 8;
  int num_categories = 6;
  int features_per_item = 3;
  int also_bought_per_item = 2;  ///< complementary direct edges
  int also_viewed_per_item = 2;  ///< substitutable direct edges
  double relevance_kappa = 2.0;

  // --- social network ---
  int num_users = 200;
  SocialTopology topology = SocialTopology::kPreferentialAttachment;
  bool directed = false;
  double mean_influence = 0.1;
  int pa_edges_per_node = 3;
  int sw_neighbors = 4;      ///< k for small world
  double sw_rewire = 0.1;    ///< beta for small world
  int community_blocks = 4;  ///< for kCommunity
  double community_p_in = 0.3;
  double community_p_out = 0.01;

  // --- users ---
  double base_pref_lo = 0.02;
  double base_pref_hi = 0.35;
  /// Extra preference for items in the user's interest category.
  double interest_boost = 0.3;
  double wmeta_lo = 0.2;
  double wmeta_hi = 0.7;

  // --- items ---
  ImportanceKind importance = ImportanceKind::kLogNormalPrice;
  double importance_mu = 0.4;
  double importance_sigma = 0.5;

  // --- costs (c ∝ outdeg / pref, rescaled to a target median) ---
  double target_median_cost = 25.0;
};

/// Generates the dataset; deterministic in `spec.seed`.
Dataset GenerateSynthetic(const SyntheticSpec& spec);

}  // namespace imdpp::data

#endif  // IMDPP_DATA_SYNTHETIC_H_
