// Dataset catalog: scaled-down synthetic stand-ins for the paper's four
// dataset flavors (Table II), the 100-user sample used against OPT
// (Fig. 8), the five classroom datasets of the empirical study
// (Table III / Fig. 12), and the hand-built Fig. 1 toy KG.
//
// `scale` multiplies user/item counts (1.0 = the default laptop-scale
// sizes; the paper's millions of users are out of scope — see DESIGN.md).
#ifndef IMDPP_DATA_CATALOG_H_
#define IMDPP_DATA_CATALOG_H_

#include "data/synthetic.h"

namespace imdpp::data {

/// Amazon-flavor: directed (Pokec-supplemented) heavy-tailed friendships,
/// product KG with brands/categories/features, price importances.
Dataset MakeAmazonLike(double scale = 1.0, uint64_t seed = 11);

/// Yelp-flavor: undirected small-world friendships, business KG
/// (city/category/amenity), moderate influence strengths (0.121 avg).
Dataset MakeYelpLike(double scale = 1.0, uint64_t seed = 22);

/// Douban-flavor: large undirected graph, media KG (genre/author/tag),
/// complementary-heavy item relations, weak influence (0.011 avg).
Dataset MakeDoubanLike(double scale = 1.0, uint64_t seed = 33);

/// Gowalla-flavor: undirected check-in graph, spot KG (region/type),
/// random importances (the site is offline; Sec. VI-A does the same).
Dataset MakeGowallaLike(double scale = 1.0, uint64_t seed = 44);

/// Flixster-flavor: undirected movie-rating friendships (small-world),
/// film KG (studio/genre/keyword), substitutable-heavy item relations
/// (competing releases), uniform importances.
Dataset MakeFlixsterLike(double scale = 1.0, uint64_t seed = 88);

/// The 100-user Amazon sample compared against OPT (Fig. 8).
Dataset MakeSmallAmazonSample(uint64_t seed = 55);

/// Classroom datasets of the empirical study (Table III): five classes
/// A..E with the paper's user counts and a shared 30-course KG flavor.
/// `class_index` in [0, 5).
Dataset MakeClassroom(int class_index, uint64_t seed = 66);

/// Hand-built Fig. 1 toy: iPhone / AirPods / wireless charger / charging
/// cable, features Bluetooth & Qi, brand Apple; 3-user social graph
/// (Alice -> Bob <- Cindy). Used by unit tests and the quickstart.
Dataset MakeFig1Toy();

}  // namespace imdpp::data

#endif  // IMDPP_DATA_CATALOG_H_
