// A self-contained IMDPP dataset: knowledge graph, meta-graphs, relevance
// model, social network, preferences, costs, importances and initial
// perceptions. Owns its components behind stable heap storage so Problem
// views remain valid across moves.
#ifndef IMDPP_DATA_DATASET_H_
#define IMDPP_DATA_DATASET_H_

#include <memory>
#include <string>
#include <vector>

#include "diffusion/problem.h"
#include "graph/social_graph.h"
#include "kg/knowledge_graph.h"
#include "kg/relevance.h"

namespace imdpp::data {

struct Dataset {
  std::string name;
  bool directed_friendship = false;

  std::unique_ptr<kg::KnowledgeGraph> kg;
  std::unique_ptr<kg::RelevanceModel> relevance;
  std::unique_ptr<graph::SocialGraph> social;

  std::vector<double> importance;  ///< per item
  std::vector<float> base_pref;    ///< |V| x |I| row-major
  std::vector<float> cost;         ///< |V| x |I| row-major
  std::vector<float> wmeta0;       ///< |V| x M row-major

  int NumUsers() const { return social->NumUsers(); }
  int NumItems() const { return relevance->NumItems(); }

  /// Problem view with the given budget / promotion count / dynamics.
  /// The Dataset must outlive the returned Problem.
  diffusion::Problem MakeProblem(double budget, int num_promotions,
                                 pin::PerceptionParams params = {}) const;

  /// Same but with the relevance model restricted to a meta-graph subset
  /// (sensitivity study, Fig. 13). The override must be kept alive by the
  /// caller. `meta_indices` maps the override's metas back to this
  /// dataset's metas for the initial weightings (nullptr = identity prefix).
  diffusion::Problem MakeProblemWithRelevance(
      const kg::RelevanceModel& relevance_override, double budget,
      int num_promotions, pin::PerceptionParams params = {},
      const std::vector<int>* meta_indices = nullptr) const;
};

}  // namespace imdpp::data

#endif  // IMDPP_DATA_DATASET_H_
