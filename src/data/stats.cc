#include "data/stats.h"

namespace imdpp::data {

DatasetStats ComputeStats(const Dataset& ds) {
  DatasetStats s;
  s.name = ds.name;
  s.node_types = ds.kg->NumNodeTypes() + 1;  // + USER
  s.nodes = ds.kg->NumNodes() + ds.social->NumUsers();
  s.users = ds.social->NumUsers();
  s.items = ds.kg->NumItems();
  s.edge_types = ds.kg->NumEdgeTypes() + 1;  // + FRIENDSHIP
  s.friendships = ds.social->NumEdges();
  s.edges = ds.kg->NumEdges() + s.friendships;
  s.directed_friendship = ds.directed_friendship;
  s.avg_influence = ds.social->AverageInfluenceStrength();
  double w = 0.0;
  for (double x : ds.importance) w += x;
  s.avg_importance = ds.importance.empty()
                         ? 0.0
                         : w / static_cast<double>(ds.importance.size());
  return s;
}

void SetStatsHeader(TextTable& table) {
  table.SetHeader({"dataset", "#node-types", "#nodes", "#users", "#items",
                   "#edge-types", "#edges", "#friendships", "directed?",
                   "avg-influence", "avg-importance"});
}

void AppendStatsRow(TextTable& table, const DatasetStats& s) {
  table.AddRow({s.name, TextTable::Int(s.node_types), TextTable::Int(s.nodes),
                TextTable::Int(s.users), TextTable::Int(s.items),
                TextTable::Int(s.edge_types), TextTable::Int(s.edges),
                TextTable::Int(s.friendships),
                s.directed_friendship ? "yes" : "no",
                TextTable::Num(s.avg_influence, 3),
                TextTable::Num(s.avg_importance, 2)});
}

}  // namespace imdpp::data
