#include "baselines/hag.h"

#include "baselines/cr_greedy.h"

namespace imdpp::baselines {

BaselineResult RunHag(const Problem& problem, const BaselineConfig& config) {
  std::unique_ptr<SigmaBackend> engine_owner = diffusion::MakeSigmaBackend(
      config.backend, problem, config.campaign, config.selection_samples,
      config.num_threads, config.shared_pool);
  SigmaBackend& engine = *engine_owner;
  std::vector<Nominee> candidates =
      core::BuildCandidateUniverse(problem, config.candidates);

  // Plain (non-lazy) greedy over pairs — deliberately the expensive
  // enumeration the paper attributes to HAG.
  std::vector<Nominee> selected;
  std::vector<uint8_t> used(candidates.size(), 0);
  double spent = 0.0;
  double sigma_cur = 0.0;
  auto at_first = [](const std::vector<Nominee>& ns) {
    SeedGroup g;
    for (const Nominee& n : ns) g.push_back({n.user, n.item, 1});
    return g;
  };
  while (true) {
    int best = -1;
    double best_ratio = 0.0;
    double best_sigma = 0.0;
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (used[i]) continue;
      const Nominee& n = candidates[i];
      double cost = problem.Cost(n.user, n.item);
      if (cost > problem.budget - spent) continue;
      std::vector<Nominee> with = selected;
      with.push_back(n);
      double sigma = engine.Sigma(at_first(with));
      double ratio = (sigma - sigma_cur) / cost;
      if (ratio > best_ratio) {
        best_ratio = ratio;
        best = static_cast<int>(i);
        best_sigma = sigma;
      }
    }
    if (best < 0) break;
    used[best] = 1;
    selected.push_back(candidates[best]);
    spent += problem.Cost(candidates[best].user, candidates[best].item);
    sigma_cur = best_sigma;
  }

  SeedGroup seeds = CrGreedyTimings(engine, selected);
  return FinalizeResult(problem, config, std::move(seeds),
                        engine.num_simulations());
}

}  // namespace imdpp::baselines
