#include "baselines/hag.h"

#include "baselines/cr_greedy.h"

namespace imdpp::baselines {

BaselineResult RunHag(const Problem& problem, const BaselineConfig& config) {
  std::unique_ptr<SigmaBackend> engine_owner = diffusion::MakeSigmaBackend(
      config.backend, problem, config.campaign, config.selection_samples,
      config.num_threads, config.shared_pool);
  SigmaBackend& engine = *engine_owner;
  std::vector<Nominee> candidates =
      core::BuildCandidateUniverse(problem, config.candidates);

  // Plain (non-lazy) greedy over pairs — deliberately the expensive
  // enumeration the paper attributes to HAG.
  std::vector<Nominee> selected;
  std::vector<uint8_t> used(candidates.size(), 0);
  double spent = 0.0;
  double sigma_cur = 0.0;
  auto at_first = [](const std::vector<Nominee>& ns) {
    SeedGroup g;
    for (const Nominee& n : ns) g.push_back({n.user, n.item, 1});
    return g;
  };
  while (true) {
    // One candidate per affordable unused nominee, in order, scored by
    // gain/cost against the current σ̂ (affine in the evaluation, so the
    // adaptive race optimizes the same objective). min_score = 0.0 keeps
    // the historical only-positive-ratios acceptance.
    std::vector<diffusion::SelectCandidate> cands;
    std::vector<size_t> cand_idx;
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (used[i]) continue;
      const Nominee& n = candidates[i];
      double cost = problem.Cost(n.user, n.item);
      if (cost > problem.budget - spent) continue;
      std::vector<Nominee> with = selected;
      with.push_back(n);
      diffusion::SelectCandidate sc;
      sc.group = at_first(with);
      sc.score = [sigma_cur, cost](const diffusion::MarketEval& ev) {
        return (ev.sigma - sigma_cur) / cost;
      };
      cands.push_back(std::move(sc));
      cand_idx.push_back(i);
    }
    if (cands.empty()) break;
    diffusion::SelectOptions options;
    options.adaptive = config.backend.adaptive;
    options.min_score = 0.0;
    const diffusion::SelectBestResult r = engine.SelectBest(cands, options);
    if (r.best_index < 0) break;
    const size_t best = cand_idx[static_cast<size_t>(r.best_index)];
    used[best] = 1;
    selected.push_back(candidates[best]);
    spent += problem.Cost(candidates[best].user, candidates[best].item);
    sigma_cur = r.best_eval.sigma;
  }

  SeedGroup seeds = CrGreedyTimings(engine, selected, config.backend.adaptive);
  return FinalizeResult(problem, config, std::move(seeds),
                        engine.num_simulations());
}

}  // namespace imdpp::baselines
