// Shared types for the comparison approaches of Sec. VI-A. Each baseline
// selects nominees its own way; all are extended (as in the paper) with a
// CR-Greedy-style timing assignment to support multiple promotions, and
// with cost-awareness when selecting from the remaining budget.
#ifndef IMDPP_BASELINES_COMMON_H_
#define IMDPP_BASELINES_COMMON_H_

#include <memory>
#include <vector>

#include "core/nominee_selection.h"
#include "diffusion/monte_carlo.h"
#include "diffusion/problem.h"
#include "prep/prep.h"
#include "util/status.h"

namespace imdpp::baselines {

using core::CandidateConfig;
using diffusion::Nominee;
using diffusion::Problem;
using diffusion::Seed;
using diffusion::SeedGroup;
using diffusion::SigmaBackend;

struct BaselineConfig {
  int selection_samples = 12;
  int eval_samples = 48;
  CandidateConfig candidates;
  diffusion::CampaignConfig campaign;
  /// Which σ-evaluation backend answers every estimate ("mc" default).
  diffusion::SigmaBackendSpec backend;
  /// Monte-Carlo executor count (util::kAutoThreads = hardware
  /// concurrency, 0 = serial); estimates are thread-count invariant.
  int num_threads = util::kAutoThreads;
  /// Optional pool shared by every engine the baseline builds (sessions
  /// pass theirs in); null = per-engine lazy pool.
  std::shared_ptr<util::ThreadPool> shared_pool;
  /// Optional prep-artifact cache (see core::DysimConfig); consumed by
  /// the baselines that build graph structure (PS's influence regions).
  std::shared_ptr<prep::PrepCache> prep_cache;
  bool prep_cache_enabled = true;
  int prep_build_threads = util::kAutoThreads;
};

struct BaselineResult {
  SeedGroup seeds;
  double sigma = 0.0;
  double total_cost = 0.0;
  /// Work accounting under the canonical util::metric names (ISSUE 9):
  /// eval.simulations for the search + final-eval estimates, plus
  /// prep.builds / prep.reuses / prep.millis for the baselines that
  /// build graph structure (PS's influence regions). See
  /// core::DysimResult::metrics.
  util::MetricsSnapshot metrics;
  /// How the run ended (see core::DysimResult::status): OkStatus() for a
  /// completed baseline, the token's reason or a prep-acquisition error
  /// otherwise. FinalizeResult fills it from the run's token.
  util::Status status;
};

/// Final σ̂ at eval_samples plus bookkeeping, shared by every baseline.
BaselineResult FinalizeResult(const Problem& problem,
                              const BaselineConfig& config, SeedGroup seeds,
                              int64_t search_simulations);

}  // namespace imdpp::baselines

#endif  // IMDPP_BASELINES_COMMON_H_
