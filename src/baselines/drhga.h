// DRHGA baseline (after Huang, Meng, Shen, "Competitive and complementary
// influence maximization ...", KBS'20, as characterized in Sec. VI-B): it
// promotes *every* item, selecting appropriate users per item — the
// per-item greedy is why it beats BGRD (which bundles) but it neither
// chooses which items to promote nor models dynamic perception. The
// per-item budget split is importance-proportional.
#ifndef IMDPP_BASELINES_DRHGA_H_
#define IMDPP_BASELINES_DRHGA_H_

#include "baselines/common.h"

namespace imdpp::baselines {

BaselineResult RunDrhga(const Problem& problem, const BaselineConfig& config);

}  // namespace imdpp::baselines

#endif  // IMDPP_BASELINES_DRHGA_H_
