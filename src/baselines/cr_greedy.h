// CR-Greedy timing assignment (after Sun et al., "Multi-round influence
// maximization", KDD'18): given nominees in selection order, greedily place
// each at the promotion round with the highest paired marginal σ̂. The
// paper augments every single-promotion baseline with this scheduler to
// make them comparable under multiple promotions (Sec. VI-A).
#ifndef IMDPP_BASELINES_CR_GREEDY_H_
#define IMDPP_BASELINES_CR_GREEDY_H_

#include "baselines/common.h"

namespace imdpp::baselines {

/// Assigns a promotion in [1, T] to every nominee (T from the engine's
/// problem). Deterministic; ties prefer earlier rounds. `adaptive`
/// switches the per-nominee timing argmax to sequential stopping
/// (diffusion/adaptive_eval.h); disabled = the fixed reference loop.
SeedGroup CrGreedyTimings(
    const SigmaBackend& engine, const std::vector<Nominee>& nominees,
    const diffusion::AdaptiveEvalConfig& adaptive = {});

}  // namespace imdpp::baselines

#endif  // IMDPP_BASELINES_CR_GREEDY_H_
