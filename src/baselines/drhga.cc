#include "baselines/drhga.h"

#include <algorithm>

#include "baselines/cr_greedy.h"

namespace imdpp::baselines {

BaselineResult RunDrhga(const Problem& problem, const BaselineConfig& config) {
  std::unique_ptr<SigmaBackend> engine_owner = diffusion::MakeSigmaBackend(
      config.backend, problem, config.campaign, config.selection_samples,
      config.num_threads, config.shared_pool);
  SigmaBackend& engine = *engine_owner;

  // Candidate users (top by out-degree when pruned).
  core::CandidateConfig cand = config.candidates;
  cand.max_items = 1;
  std::vector<Nominee> unit = core::BuildCandidateUniverse(problem, cand);
  std::vector<graph::UserId> users;
  for (const Nominee& n : unit) {
    if (users.empty() || users.back() != n.user) users.push_back(n.user);
  }

  // Items in importance order with proportional budget shares.
  std::vector<kg::ItemId> items(problem.NumItems());
  for (int i = 0; i < problem.NumItems(); ++i) items[i] = i;
  std::stable_sort(items.begin(), items.end(),
                   [&](kg::ItemId a, kg::ItemId b) {
                     return problem.importance[a] > problem.importance[b];
                   });
  double w_total = 0.0;
  for (double w : problem.importance) w_total += w;

  auto at_first = [](const std::vector<Nominee>& ns) {
    SeedGroup g;
    for (const Nominee& n : ns) g.push_back({n.user, n.item, 1});
    return g;
  };

  std::vector<Nominee> selected;
  double carry = 0.0;  // unspent share rolls over to the next item
  double sigma_cur = 0.0;
  for (kg::ItemId x : items) {
    double share =
        w_total > 0.0
            ? problem.budget * (problem.importance[x] / w_total) + carry
            : carry;
    double spent_x = 0.0;
    std::vector<uint8_t> used(users.size(), 0);
    while (true) {
      int best = -1;
      double best_ratio = 0.0;
      double best_sigma = 0.0;
      for (size_t i = 0; i < users.size(); ++i) {
        if (used[i]) continue;
        double cost = problem.Cost(users[i], x);
        if (cost > share - spent_x) continue;
        std::vector<Nominee> with = selected;
        with.push_back(Nominee{users[i], x});
        double sigma = engine.Sigma(at_first(with));
        double ratio = (sigma - sigma_cur) / cost;
        if (ratio > best_ratio) {
          best_ratio = ratio;
          best = static_cast<int>(i);
          best_sigma = sigma;
        }
      }
      if (best < 0) break;
      used[best] = 1;
      selected.push_back(Nominee{users[best], x});
      spent_x += problem.Cost(users[best], x);
      sigma_cur = best_sigma;
    }
    carry = share - spent_x;
  }

  SeedGroup seeds = CrGreedyTimings(engine, selected);
  return FinalizeResult(problem, config, std::move(seeds),
                        engine.num_simulations());
}

}  // namespace imdpp::baselines
