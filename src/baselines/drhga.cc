#include "baselines/drhga.h"

#include <algorithm>

#include "baselines/cr_greedy.h"

namespace imdpp::baselines {

BaselineResult RunDrhga(const Problem& problem, const BaselineConfig& config) {
  std::unique_ptr<SigmaBackend> engine_owner = diffusion::MakeSigmaBackend(
      config.backend, problem, config.campaign, config.selection_samples,
      config.num_threads, config.shared_pool);
  SigmaBackend& engine = *engine_owner;

  // Candidate users (top by out-degree when pruned).
  core::CandidateConfig cand = config.candidates;
  cand.max_items = 1;
  std::vector<Nominee> unit = core::BuildCandidateUniverse(problem, cand);
  std::vector<graph::UserId> users;
  for (const Nominee& n : unit) {
    if (users.empty() || users.back() != n.user) users.push_back(n.user);
  }

  // Items in importance order with proportional budget shares.
  std::vector<kg::ItemId> items(problem.NumItems());
  for (int i = 0; i < problem.NumItems(); ++i) items[i] = i;
  std::stable_sort(items.begin(), items.end(),
                   [&](kg::ItemId a, kg::ItemId b) {
                     return problem.importance[a] > problem.importance[b];
                   });
  double w_total = 0.0;
  for (double w : problem.importance) w_total += w;

  auto at_first = [](const std::vector<Nominee>& ns) {
    SeedGroup g;
    for (const Nominee& n : ns) g.push_back({n.user, n.item, 1});
    return g;
  };

  std::vector<Nominee> selected;
  double carry = 0.0;  // unspent share rolls over to the next item
  double sigma_cur = 0.0;
  for (kg::ItemId x : items) {
    double share =
        w_total > 0.0
            ? problem.budget * (problem.importance[x] / w_total) + carry
            : carry;
    double spent_x = 0.0;
    std::vector<uint8_t> used(users.size(), 0);
    while (true) {
      // Gain/cost argmax over affordable users for item x via the backend
      // seam (ratio is affine in the evaluation); min_score = 0.0 keeps
      // the historical only-positive-ratios acceptance.
      std::vector<diffusion::SelectCandidate> cands;
      std::vector<size_t> cand_idx;
      for (size_t i = 0; i < users.size(); ++i) {
        if (used[i]) continue;
        double cost = problem.Cost(users[i], x);
        if (cost > share - spent_x) continue;
        std::vector<Nominee> with = selected;
        with.push_back(Nominee{users[i], x});
        diffusion::SelectCandidate sc;
        sc.group = at_first(with);
        sc.score = [sigma_cur, cost](const diffusion::MarketEval& ev) {
          return (ev.sigma - sigma_cur) / cost;
        };
        cands.push_back(std::move(sc));
        cand_idx.push_back(i);
      }
      if (cands.empty()) break;
      diffusion::SelectOptions options;
      options.adaptive = config.backend.adaptive;
      options.min_score = 0.0;
      const diffusion::SelectBestResult r =
          engine.SelectBest(cands, options);
      if (r.best_index < 0) break;
      const size_t best = cand_idx[static_cast<size_t>(r.best_index)];
      used[best] = 1;
      selected.push_back(Nominee{users[best], x});
      spent_x += problem.Cost(users[best], x);
      sigma_cur = r.best_eval.sigma;
    }
    carry = share - spent_x;
  }

  SeedGroup seeds = CrGreedyTimings(engine, selected, config.backend.adaptive);
  return FinalizeResult(problem, config, std::move(seeds),
                        engine.num_simulations());
}

}  // namespace imdpp::baselines
