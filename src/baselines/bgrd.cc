#include "baselines/bgrd.h"

#include <algorithm>

#include "baselines/cr_greedy.h"

namespace imdpp::baselines {

namespace {

/// The affordable prefix of the bundle for user u: items in descending
/// importance while the running cost fits the remaining budget.
std::vector<Nominee> BundleFor(const Problem& problem, graph::UserId u,
                               const std::vector<kg::ItemId>& items_by_w,
                               double remaining) {
  std::vector<Nominee> bundle;
  double cost = 0.0;
  for (kg::ItemId x : items_by_w) {
    double c = problem.Cost(u, x);
    if (cost + c > remaining) continue;
    cost += c;
    bundle.push_back(Nominee{u, x});
  }
  return bundle;
}

}  // namespace

BaselineResult RunBgrd(const Problem& problem, const BaselineConfig& config) {
  std::unique_ptr<SigmaBackend> engine_owner = diffusion::MakeSigmaBackend(
      config.backend, problem, config.campaign, config.selection_samples,
      config.num_threads, config.shared_pool);
  SigmaBackend& engine = *engine_owner;

  // Candidate users (top by out-degree when pruned).
  core::CandidateConfig cand = config.candidates;
  cand.max_items = 1;  // only used to enumerate users cheaply
  std::vector<Nominee> unit = core::BuildCandidateUniverse(problem, cand);
  std::vector<graph::UserId> users;
  for (const Nominee& n : unit) {
    if (users.empty() || users.back() != n.user) users.push_back(n.user);
  }

  std::vector<kg::ItemId> items_by_w(problem.NumItems());
  for (int i = 0; i < problem.NumItems(); ++i) items_by_w[i] = i;
  std::stable_sort(items_by_w.begin(), items_by_w.end(),
                   [&](kg::ItemId a, kg::ItemId b) {
                     return problem.importance[a] > problem.importance[b];
                   });

  std::vector<Nominee> selected;
  std::vector<uint8_t> used(users.size(), 0);
  double spent = 0.0;
  double sigma_cur = 0.0;
  auto at_first = [](const std::vector<Nominee>& ns) {
    SeedGroup g;
    for (const Nominee& n : ns) g.push_back({n.user, n.item, 1});
    return g;
  };

  while (true) {
    // One candidate per unused user with a non-empty affordable bundle,
    // in user order, scored by gain/cost against the current σ̂. The
    // ratio is affine in the evaluation, so the adaptive race optimizes
    // the same objective; min_score = 0.0 is the historical accumulator
    // seed (only strictly positive ratios are accepted).
    std::vector<diffusion::SelectCandidate> cands;
    std::vector<size_t> cand_user;
    std::vector<std::vector<Nominee>> cand_bundle;
    std::vector<double> cand_cost;
    for (size_t i = 0; i < users.size(); ++i) {
      if (used[i]) continue;
      std::vector<Nominee> bundle =
          BundleFor(problem, users[i], items_by_w, problem.budget - spent);
      if (bundle.empty()) continue;
      double cost = 0.0;
      for (const Nominee& n : bundle) cost += problem.Cost(n.user, n.item);
      std::vector<Nominee> with = selected;
      with.insert(with.end(), bundle.begin(), bundle.end());
      diffusion::SelectCandidate sc;
      sc.group = at_first(with);
      sc.score = [sigma_cur, cost](const diffusion::MarketEval& ev) {
        return (ev.sigma - sigma_cur) / cost;
      };
      cands.push_back(std::move(sc));
      cand_user.push_back(i);
      cand_bundle.push_back(std::move(bundle));
      cand_cost.push_back(cost);
    }
    if (cands.empty()) break;
    diffusion::SelectOptions options;
    options.adaptive = config.backend.adaptive;
    options.min_score = 0.0;
    const diffusion::SelectBestResult r = engine.SelectBest(cands, options);
    if (r.best_index < 0) break;
    used[cand_user[static_cast<size_t>(r.best_index)]] = 1;
    for (const Nominee& n : cand_bundle[static_cast<size_t>(r.best_index)]) {
      spent += problem.Cost(n.user, n.item);
      selected.push_back(n);
    }
    sigma_cur = engine.Sigma(at_first(selected));
  }

  SeedGroup seeds = CrGreedyTimings(engine, selected, config.backend.adaptive);
  return FinalizeResult(problem, config, std::move(seeds),
                        engine.num_simulations());
}

}  // namespace imdpp::baselines
