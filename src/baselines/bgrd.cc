#include "baselines/bgrd.h"

#include <algorithm>

#include "baselines/cr_greedy.h"

namespace imdpp::baselines {

namespace {

/// The affordable prefix of the bundle for user u: items in descending
/// importance while the running cost fits the remaining budget.
std::vector<Nominee> BundleFor(const Problem& problem, graph::UserId u,
                               const std::vector<kg::ItemId>& items_by_w,
                               double remaining) {
  std::vector<Nominee> bundle;
  double cost = 0.0;
  for (kg::ItemId x : items_by_w) {
    double c = problem.Cost(u, x);
    if (cost + c > remaining) continue;
    cost += c;
    bundle.push_back(Nominee{u, x});
  }
  return bundle;
}

}  // namespace

BaselineResult RunBgrd(const Problem& problem, const BaselineConfig& config) {
  std::unique_ptr<SigmaBackend> engine_owner = diffusion::MakeSigmaBackend(
      config.backend, problem, config.campaign, config.selection_samples,
      config.num_threads, config.shared_pool);
  SigmaBackend& engine = *engine_owner;

  // Candidate users (top by out-degree when pruned).
  core::CandidateConfig cand = config.candidates;
  cand.max_items = 1;  // only used to enumerate users cheaply
  std::vector<Nominee> unit = core::BuildCandidateUniverse(problem, cand);
  std::vector<graph::UserId> users;
  for (const Nominee& n : unit) {
    if (users.empty() || users.back() != n.user) users.push_back(n.user);
  }

  std::vector<kg::ItemId> items_by_w(problem.NumItems());
  for (int i = 0; i < problem.NumItems(); ++i) items_by_w[i] = i;
  std::stable_sort(items_by_w.begin(), items_by_w.end(),
                   [&](kg::ItemId a, kg::ItemId b) {
                     return problem.importance[a] > problem.importance[b];
                   });

  std::vector<Nominee> selected;
  std::vector<uint8_t> used(users.size(), 0);
  double spent = 0.0;
  double sigma_cur = 0.0;
  auto at_first = [](const std::vector<Nominee>& ns) {
    SeedGroup g;
    for (const Nominee& n : ns) g.push_back({n.user, n.item, 1});
    return g;
  };

  while (true) {
    int best_u = -1;
    double best_ratio = 0.0;
    std::vector<Nominee> best_bundle;
    for (size_t i = 0; i < users.size(); ++i) {
      if (used[i]) continue;
      std::vector<Nominee> bundle =
          BundleFor(problem, users[i], items_by_w, problem.budget - spent);
      if (bundle.empty()) continue;
      double cost = 0.0;
      for (const Nominee& n : bundle) cost += problem.Cost(n.user, n.item);
      std::vector<Nominee> with = selected;
      with.insert(with.end(), bundle.begin(), bundle.end());
      double gain = engine.Sigma(at_first(with)) - sigma_cur;
      double ratio = gain / cost;
      if (ratio > best_ratio) {
        best_ratio = ratio;
        best_u = static_cast<int>(i);
        best_bundle = std::move(bundle);
      }
    }
    if (best_u < 0) break;
    used[best_u] = 1;
    for (const Nominee& n : best_bundle) {
      spent += problem.Cost(n.user, n.item);
      selected.push_back(n);
    }
    sigma_cur = engine.Sigma(at_first(selected));
  }

  SeedGroup seeds = CrGreedyTimings(engine, selected);
  return FinalizeResult(problem, config, std::move(seeds),
                        engine.num_simulations());
}

}  // namespace imdpp::baselines
