// OPT: exhaustive search over (user, item, timing) triples (the brute-force
// reference of Fig. 8). Exact over the given candidate universe; on larger
// instances the universe must be pruned (`max_candidates` strongest
// singletons) and the seed-set size capped, which the Fig. 8 harness
// documents. Complexity: O( (|C|·T)^{max_seeds} ) σ̂ evaluations.
#ifndef IMDPP_BASELINES_OPT_H_
#define IMDPP_BASELINES_OPT_H_

#include "baselines/common.h"

namespace imdpp::baselines {

struct OptConfig : BaselineConfig {
  /// Keep the strongest-singleton candidates (0 = all).
  int max_candidates = 10;
  /// Cap on the seed-group size (0 = unbounded).
  int max_seeds = 3;
  /// Extra nominees force-included in the pruned pool (deduplicated).
  /// Passing the heuristics' solutions here guarantees the pruned
  /// enumeration still upper-bounds them.
  std::vector<Nominee> extra_candidates;
};

BaselineResult RunOpt(const Problem& problem, const OptConfig& config);

}  // namespace imdpp::baselines

#endif  // IMDPP_BASELINES_OPT_H_
