// HAG baseline (after Hung et al., "When social influence meets item
// inference", KDD'16, as characterized in Sec. VI-B): greedy selection of
// the most cost-effective user-item *pairs* (marginal σ̂ per cost), blind
// to item relationships and promotional structure. Its pair enumeration is
// what makes it slow at large budgets (Fig. 9(d)).
#ifndef IMDPP_BASELINES_HAG_H_
#define IMDPP_BASELINES_HAG_H_

#include "baselines/common.h"

namespace imdpp::baselines {

BaselineResult RunHag(const Problem& problem, const BaselineConfig& config);

}  // namespace imdpp::baselines

#endif  // IMDPP_BASELINES_HAG_H_
