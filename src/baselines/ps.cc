#include "baselines/ps.h"

#include <algorithm>

#include "baselines/cr_greedy.h"
#include "graph/graph_algos.h"
#include "util/cancel.h"

namespace imdpp::baselines {

BaselineResult RunPs(const Problem& problem, const PsConfig& config) {
  std::unique_ptr<SigmaBackend> engine_owner = diffusion::MakeSigmaBackend(
      config.backend, problem, config.campaign, config.selection_samples,
      config.num_threads, config.shared_pool);
  SigmaBackend& engine = *engine_owner;
  std::vector<Nominee> candidates =
      core::BuildCandidateUniverse(problem, config.candidates);

  // Max-influence-path regions per distinct candidate user, from the prep
  // artifacts: batch-computed in parallel on first use, then shared with
  // Dysim's market build (same (threshold, max_hops) = same entries) and
  // with later PS runs of the session.
  util::StatusOr<prep::PrepLease> lease_or =
      prep::AcquirePrep(config.prep_cache, config.prep_cache_enabled, problem,
                        config.shared_pool, config.prep_build_threads,
                        config.backend.cancel);
  if (!lease_or.ok()) {
    BaselineResult failed;
    failed.status = lease_or.status();
    return failed;
  }
  prep::PrepLease& lease = *lease_or;
  prep::PrepArtifacts& art = *lease.artifacts;
  const double prep_millis_before = lease.built ? 0.0 : art.total_millis();
  std::vector<graph::UserId> sources;
  sources.reserve(candidates.size());
  for (const Nominee& n : candidates) sources.push_back(n.user);
  art.PrefetchRegions(std::move(sources), config.path_threshold,
                      config.max_hops);
  auto region_of = [&](graph::UserId u) -> const graph::InfluencePaths& {
    return art.Region(u, config.path_threshold, config.max_hops);
  };

  std::vector<uint8_t> covered(problem.NumUsers(), 0);
  std::vector<uint8_t> used(candidates.size(), 0);
  std::vector<Nominee> selected;
  double spent = 0.0;
  // Greedy-iteration boundary checks (ISSUE 8): a fired token stops the
  // coverage greedy with the seeds picked so far.
  while (util::CheckCancel(config.backend.cancel.get()).ok()) {
    int best = -1;
    double best_ratio = 0.0;
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (used[i]) continue;
      const Nominee& n = candidates[i];
      double cost = problem.Cost(n.user, n.item);
      if (cost > problem.budget - spent) continue;
      const graph::InfluencePaths& region = region_of(n.user);
      double score = 0.0;
      for (size_t r = 0; r < region.users.size(); ++r) {
        graph::UserId v = region.users[r];
        double mass = region.path_prob[r] * problem.BasePref(v, n.item) *
                      problem.importance[n.item];
        score += covered[v] ? config.covered_discount * mass : mass;
      }
      double ratio = score / cost;
      if (ratio > best_ratio) {
        best_ratio = ratio;
        best = static_cast<int>(i);
      }
    }
    if (best < 0) break;
    const Nominee& n = candidates[best];
    used[best] = 1;
    selected.push_back(n);
    spent += problem.Cost(n.user, n.item);
    for (graph::UserId v : region_of(n.user).users) covered[v] = 1;
  }

  SeedGroup seeds = CrGreedyTimings(engine, selected, config.backend.adaptive);
  BaselineResult result = FinalizeResult(problem, config, std::move(seeds),
                                         engine.num_simulations());
  prep::AddLeaseMetrics(result.metrics, lease,
                        art.total_millis() - prep_millis_before);
  return result;
}

}  // namespace imdpp::baselines
