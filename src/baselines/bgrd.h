// BGRD baseline (after Banerjee, Chen, Lakshmanan, "Maximizing welfare ...
// under a utility driven influence diffusion model", SIGMOD'19, as
// characterized in Sec. VI-B): items are treated as one *bundle*; users are
// selected greedily by the marginal influence of seeding them with the
// affordable prefix of the bundle (items in importance order), normalized
// by cost. It ignores the substitutable relationship by construction —
// the weakness Fig. 9 exposes on Douban-like data.
#ifndef IMDPP_BASELINES_BGRD_H_
#define IMDPP_BASELINES_BGRD_H_

#include "baselines/common.h"

namespace imdpp::baselines {

BaselineResult RunBgrd(const Problem& problem, const BaselineConfig& config);

}  // namespace imdpp::baselines

#endif  // IMDPP_BASELINES_BGRD_H_
