#include "baselines/common.h"

#include "util/cancel.h"

namespace imdpp::baselines {

BaselineResult FinalizeResult(const Problem& problem,
                              const BaselineConfig& config, SeedGroup seeds,
                              int64_t search_simulations) {
  BaselineResult result;
  std::unique_ptr<SigmaBackend> eval = diffusion::MakeSigmaBackend(
      config.backend, problem, config.campaign, config.eval_samples,
      config.num_threads, config.shared_pool);
  result.sigma = eval->Sigma(seeds);
  result.total_cost = problem.TotalCost(seeds);
  result.seeds = std::move(seeds);
  result.metrics.AddCounter(util::metric::kEvalSimulations,
                            search_simulations + eval->num_simulations());
  // A fired run token is the baseline's outcome (the estimates above
  // returned don't-care values once it fired).
  result.status = util::CheckCancel(config.backend.cancel.get());
  return result;
}

}  // namespace imdpp::baselines
