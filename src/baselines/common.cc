#include "baselines/common.h"

namespace imdpp::baselines {

BaselineResult FinalizeResult(const Problem& problem,
                              const BaselineConfig& config, SeedGroup seeds,
                              int64_t search_simulations) {
  BaselineResult result;
  std::unique_ptr<SigmaBackend> eval = diffusion::MakeSigmaBackend(
      config.backend, problem, config.campaign, config.eval_samples,
      config.num_threads, config.shared_pool);
  result.sigma = eval->Sigma(seeds);
  result.total_cost = problem.TotalCost(seeds);
  result.seeds = std::move(seeds);
  result.simulations = search_simulations + eval->num_simulations();
  return result;
}

}  // namespace imdpp::baselines
