#include "baselines/cr_greedy.h"

#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

namespace imdpp::baselines {

SeedGroup CrGreedyTimings(const SigmaBackend& engine,
                          const std::vector<Nominee>& nominees,
                          const diffusion::AdaptiveEvalConfig& adaptive) {
  const int T = engine.simulator().problem().num_promotions;
  // Candidate (n, t) shares `placed`'s rounds < t, so each σ̂ resumes from
  // the round-(t-1) checkpoint of the current placement when the backend
  // checkpoints (bit-identical to evaluating from scratch).
  std::unique_ptr<diffusion::ScheduleEval> placer =
      engine.MakeScheduleEval(/*base=*/{});
  SeedGroup placed;
  for (const Nominee& n : nominees) {
    // Race the T timings (candidate i ↔ round i+1); min_score = -1.0 is
    // the historical accumulator seed, so the fixed path is the exact
    // old loop and ties keep preferring earlier rounds.
    std::vector<diffusion::SelectCandidate> timings(
        static_cast<size_t>(T));
    for (int t = 1; t <= T; ++t) {
      SeedGroup with = placed;
      with.push_back({n.user, n.item, t});
      timings[static_cast<size_t>(t - 1)].group = std::move(with);
    }
    diffusion::SelectOptions options;
    options.adaptive = adaptive;
    options.min_score = -1.0;
    const diffusion::SelectBestResult r =
        placer->SelectBest(timings, options);
    const int best_t = r.best_index < 0 ? 1 : r.best_index + 1;
    placed.push_back({n.user, n.item, best_t});
    placer->Rebase(placed);
  }
  return placed;
}

}  // namespace imdpp::baselines
