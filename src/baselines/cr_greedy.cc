#include "baselines/cr_greedy.h"

namespace imdpp::baselines {

SeedGroup CrGreedyTimings(const SigmaBackend& engine,
                          const std::vector<Nominee>& nominees) {
  const int T = engine.simulator().problem().num_promotions;
  // Candidate (n, t) shares `placed`'s rounds < t, so each σ̂ resumes from
  // the round-(t-1) checkpoint of the current placement when the backend
  // checkpoints (bit-identical to evaluating from scratch).
  std::unique_ptr<diffusion::ScheduleEval> placer =
      engine.MakeScheduleEval(/*base=*/{});
  SeedGroup placed;
  double sigma_placed = 0.0;
  for (const Nominee& n : nominees) {
    int best_t = 1;
    double best_sigma = -1.0;
    for (int t = 1; t <= T; ++t) {
      SeedGroup with = placed;
      with.push_back({n.user, n.item, t});
      double s = placer->Sigma(with);
      if (s > best_sigma) {
        best_sigma = s;
        best_t = t;
      }
    }
    placed.push_back({n.user, n.item, best_t});
    placer->Rebase(placed);
    sigma_placed = best_sigma;
  }
  (void)sigma_placed;
  return placed;
}

}  // namespace imdpp::baselines
