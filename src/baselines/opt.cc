#include "baselines/opt.h"

#include <algorithm>
#include <functional>

namespace imdpp::baselines {

namespace {

struct Triple {
  Nominee nominee;
  int promotion;
  double cost;
};

/// DFS over triples in index order; each nominee may be used at most once
/// (the same (u,x) at two timings is dominated by the earlier timing's
/// adoption blocking the later one, and the paper's seed group is a set).
void Search(const std::vector<Triple>& triples, size_t from, double remaining,
            int seeds_left, SeedGroup& current,
            const std::function<void(const SeedGroup&)>& visit) {
  visit(current);
  if (seeds_left == 0) return;
  for (size_t i = from; i < triples.size(); ++i) {
    const Triple& tr = triples[i];
    if (tr.cost > remaining) continue;
    if (diffusion::ContainsNominee(current, tr.nominee)) continue;
    current.push_back({tr.nominee.user, tr.nominee.item, tr.promotion});
    Search(triples, i + 1, remaining - tr.cost, seeds_left - 1, current,
           visit);
    current.pop_back();
  }
}

}  // namespace

BaselineResult RunOpt(const Problem& problem, const OptConfig& config) {
  std::unique_ptr<SigmaBackend> engine_owner = diffusion::MakeSigmaBackend(
      config.backend, problem, config.campaign, config.selection_samples,
      config.num_threads, config.shared_pool);
  SigmaBackend& engine = *engine_owner;
  std::vector<Nominee> candidates =
      core::BuildCandidateUniverse(problem, config.candidates);

  // Rank candidates by singleton σ̂ and keep the strongest.
  if (config.max_candidates > 0 &&
      static_cast<int>(candidates.size()) > config.max_candidates) {
    std::vector<std::pair<double, Nominee>> scored;
    scored.reserve(candidates.size());
    for (const Nominee& n : candidates) {
      scored.emplace_back(engine.Sigma({{n.user, n.item, 1}}), n);
    }
    std::stable_sort(scored.begin(), scored.end(),
                     [](const auto& a, const auto& b) {
                       return a.first > b.first;
                     });
    candidates.clear();
    for (int i = 0; i < config.max_candidates; ++i) {
      candidates.push_back(scored[i].second);
    }
  }
  for (const Nominee& n : config.extra_candidates) {
    if (std::find(candidates.begin(), candidates.end(), n) ==
        candidates.end()) {
      candidates.push_back(n);
    }
  }

  const int T = problem.num_promotions;
  std::vector<Triple> triples;
  for (const Nominee& n : candidates) {
    for (int t = 1; t <= T; ++t) {
      triples.push_back(Triple{n, t, problem.Cost(n.user, n.item)});
    }
  }

  SeedGroup best;
  double best_sigma = 0.0;
  SeedGroup current;
  int cap = config.max_seeds > 0 ? config.max_seeds
                                 : static_cast<int>(triples.size());
  Search(triples, 0, problem.budget, cap, current,
         [&](const SeedGroup& sg) {
           if (sg.empty()) return;
           double s = engine.Sigma(sg);
           if (s > best_sigma) {
             best_sigma = s;
             best = sg;
           }
         });

  return FinalizeResult(problem, config, std::move(best),
                        engine.num_simulations());
}

}  // namespace imdpp::baselines
