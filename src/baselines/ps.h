// PS baseline (after Teng et al., "Revenue maximization on the multi-grade
// product", SDM'18, as characterized in Sec. VI-B): each candidate seed is
// scored *alone* by the importance- and preference-weighted mass of its
// maximum-influence-path region, with a discount for users already covered
// by selected seeds. It never re-simulates combinations, which makes it
// cheap but unable to exploit cross-promotion item impact (the weakness
// Fig. 9 exposes).
#ifndef IMDPP_BASELINES_PS_H_
#define IMDPP_BASELINES_PS_H_

#include "baselines/common.h"

namespace imdpp::baselines {

struct PsConfig : BaselineConfig {
  double path_threshold = 0.01;
  int max_hops = 8;
  /// Score multiplier for already-covered users.
  double covered_discount = 0.2;
};

BaselineResult RunPs(const Problem& problem, const PsConfig& config);

}  // namespace imdpp::baselines

#endif  // IMDPP_BASELINES_PS_H_
