#include "api/session.h"

#include <chrono>
#include <utility>

#include "prep/ris_sketch.h"
#include "util/check.h"
#include "util/fault_injection.h"
#include "util/trace.h"

namespace imdpp::api {

CampaignSession::CampaignSession(data::Dataset dataset, PlannerConfig config)
    : dataset_(std::move(dataset)),
      config_(std::move(config)),
      prep_cache_(std::make_shared<prep::PrepCache>()),
      sketch_cache_(std::make_shared<prep::RisSketchCache>()) {}

CampaignSession::CampaignSession(data::Dataset dataset, double budget,
                                 int num_promotions, PlannerConfig config)
    : CampaignSession(std::move(dataset), std::move(config)) {
  SetProblem(budget, num_promotions);
}

void CampaignSession::SetProblem(double budget, int num_promotions,
                                 pin::PerceptionParams params) {
  // No-op on an unchanged problem: keep the shared engine and the warm
  // prep artifacts (the dedupe sweep_runner used to do by hand).
  if (problem_.graph != nullptr && relevance_override_ == nullptr &&
      !problem_dirty_ && problem_.budget == budget &&
      problem_.num_promotions == num_promotions && problem_.params == params) {
    return;
  }
  engine_.reset();
  relevance_override_.reset();
  problem_ = dataset_.MakeProblem(budget, num_promotions, params);
  problem_dirty_ = false;
}

void CampaignSession::SetProblemWithMetaSubset(
    const std::vector<int>& meta_indices, double budget, int num_promotions,
    pin::PerceptionParams params) {
  engine_.reset();
  relevance_override_ = std::make_unique<kg::RelevanceModel>(
      dataset_.relevance->WithMetaSubset(meta_indices));
  problem_ = dataset_.MakeProblemWithRelevance(
      *relevance_override_, budget, num_promotions, params, &meta_indices);
  problem_dirty_ = false;
}

PlanResult CampaignSession::Run(const std::string& planner_name) {
  return Run(planner_name, config_);
}

PlanResult CampaignSession::Run(const std::string& planner_name,
                                const PlannerConfig& config) {
  IMDPP_CHECK(problem_.graph != nullptr);  // SetProblem first
  const util::RobustnessCounters before = util::SnapshotRobustnessCounters();
  PlannerConfig run_config = config;
  {
    util::trace::Span span("phase.config");
    if (run_config.shared_pool == nullptr) {
      run_config.shared_pool = SharedPool(run_config.num_threads);
    }
    // One artifact cache serves every planner and every problem of this
    // session: market structure is built on the first run that needs it
    // and reused (content-keyed) from then on.
    if (run_config.prep_cache == nullptr) {
      run_config.prep_cache = prep_cache_;
    }
    if (run_config.sketch_cache == nullptr) {
      run_config.sketch_cache = sketch_cache_;
    }
    // Every Run gets its own cancellation token (ISSUE 8): deadline-armed
    // when the config asks for one, plain otherwise, so the plumbing is
    // live — and tested — on every run. A caller-provided token wins (the
    // caller decides its deadline), and either way a fired token never
    // outlives this Run: the session and its pool stay reusable.
    if (run_config.cancel == nullptr) {
      run_config.cancel =
          run_config.deadline_ms > 0
              ? util::CancelToken::WithDeadline(
                    std::chrono::milliseconds(run_config.deadline_ms))
              : std::make_shared<util::CancelToken>();
    }
  }
  PlanResult result;
  // Soft lookup (ISSUE 8): an unknown planner is a structured kNotFound
  // result, not an abort — the CLI maps it to its exit code and JSON.
  std::unique_ptr<Planner> planner =
      PlannerRegistry::Create(planner_name, run_config);
  if (planner == nullptr) {
    result.planner = planner_name;
    result.status = util::NotFoundError(
        PlannerRegistry::UnknownMessage(planner_name));
  } else {
    result = planner->Plan(problem_);
    // The final paired σ̂ on the shared engine is skipped for a failed
    // run: its seeds are partial state, and scoring them would burn the
    // deadline the run already missed.
    if (result.status.ok()) {
      util::trace::Span span("phase.eval");
      result.sigma = Sigma(result.seeds);
    }
  }
  // Re-book the robustness deltas over the whole Run bracket (planning
  // plus the final σ̂), superseding Plan()'s narrower bracket.
  BookRobustness(result, before, util::SnapshotRobustnessCounters());
  // The shared scoring engine may have latched an eval fault of its own
  // (its token is the session config's, not this run's). Surface it and
  // drop the poisoned engine, so the next run rebuilds a fresh one — the
  // session stays reusable after a failed run.
  if (result.status.ok() && engine_ != nullptr) {
    const util::CancelToken* shared = engine_->cancel_token();
    if (shared != nullptr) {
      result.status = shared->Check();
      if (!result.status.ok()) engine_.reset();
    }
  }
  return result;
}

CompareResult CampaignSession::Compare(const std::vector<std::string>& names) {
  CompareResult out;
  out.dataset = dataset_.name;
  out.budget = problem_.budget;
  out.num_promotions = problem_.num_promotions;
  out.results.reserve(names.size());
  for (const std::string& name : names) out.results.push_back(Run(name));
  return out;
}

double CampaignSession::Sigma(const diffusion::SeedGroup& seeds) {
  return engine().Sigma(seeds);
}

diffusion::Problem& CampaignSession::mutable_problem() {
  engine_.reset();
  problem_dirty_ = true;  // a later SetProblem must rebuild
  return problem_;
}

PlannerConfig& CampaignSession::mutable_config() {
  engine_.reset();
  return config_;
}

diffusion::SigmaBackend& CampaignSession::engine() {
  IMDPP_CHECK(problem_.graph != nullptr);  // SetProblem first
  if (engine_ == nullptr) {
    diffusion::CampaignConfig campaign = config_.campaign;
    campaign.base_seed = config_.seed;
    diffusion::SigmaBackendSpec spec = ToBackendSpec(config_);
    if (spec.sketch_cache == nullptr) spec.sketch_cache = sketch_cache_;
    engine_ = diffusion::MakeSigmaBackend(
        spec, problem_, campaign, config_.eval_samples, config_.num_threads,
        SharedPool(config_.num_threads));
  }
  return *engine_;
}

std::shared_ptr<util::ThreadPool> CampaignSession::SharedPool(
    int num_threads) {
  const int resolved = util::ResolveNumThreads(num_threads);
  if (resolved <= 1) return nullptr;  // serial: engines never dispatch
  if (pool_ == nullptr || pool_threads_ != resolved) {
    pool_ = std::make_shared<util::ThreadPool>(resolved - 1);
    pool_threads_ = resolved;
  }
  return pool_;
}

}  // namespace imdpp::api
