// String-keyed planner registry with self-registration. Every concrete
// algorithm registers a factory under its name at load time
// (IMDPP_REGISTER_PLANNER), so
//
//   auto planner = api::PlannerRegistry::Create("dysim", config);
//   api::PlanResult r = planner->Plan(problem);
//
// works for "dysim", "adaptive", "smk", "cr_greedy", "bgrd", "hag", "ps",
// "drhga" and "opt" — and a new algorithm costs one registration, not a
// new harness.
#ifndef IMDPP_API_REGISTRY_H_
#define IMDPP_API_REGISTRY_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "api/planner.h"

namespace imdpp::api {

class PlannerRegistry {
 public:
  using Factory = std::unique_ptr<Planner> (*)(const PlannerConfig&);

  /// Registers `factory` under `name`; returns true. Duplicate names abort
  /// (two algorithms claiming one key is a programming error).
  static bool Register(std::string name, Factory factory);

  /// Creates the planner registered under `name`, or nullptr if the name
  /// is unknown — callers that want a hard failure use CreateOrDie.
  static std::unique_ptr<Planner> Create(std::string_view name,
                                         const PlannerConfig& config = {});

  /// Like Create but aborts with the list of known names on a miss.
  static std::unique_ptr<Planner> CreateOrDie(
      std::string_view name, const PlannerConfig& config = {});

  static bool Has(std::string_view name);

  /// All registered names, sorted.
  static std::vector<std::string> Names();

  /// The failure message every lookup path reports: the unknown name plus
  /// the sorted list of registered names (CreateOrDie aborts with it; the
  /// CLI prints it and exits non-zero).
  static std::string UnknownMessage(std::string_view name);
};

namespace internal {
/// Defined in planners.cc; referenced by the registry so the linker keeps
/// the built-in planners' self-registration statics even when the library
/// is consumed as a static archive.
void EnsureBuiltinPlanners();
}  // namespace internal

/// Registers PlannerClass (constructible from PlannerConfig) under `key`.
#define IMDPP_REGISTER_PLANNER(key, PlannerClass)                         \
  [[maybe_unused]] static const bool imdpp_registered_##PlannerClass =    \
      ::imdpp::api::PlannerRegistry::Register(                            \
          key, +[](const ::imdpp::api::PlannerConfig& config)             \
                   -> std::unique_ptr<::imdpp::api::Planner> {            \
            return std::make_unique<PlannerClass>(config);                \
          })

}  // namespace imdpp::api

#endif  // IMDPP_API_REGISTRY_H_
