#include "api/planner.h"

#include <algorithm>

#include "util/fault_injection.h"
#include "util/timer.h"

namespace imdpp::api {

PlanResult Planner::Plan(const diffusion::Problem& problem) const {
  Timer timer;
  const util::RobustnessCounters before = util::SnapshotRobustnessCounters();
  PlanResult result = PlanImpl(problem);
  result.wall_seconds = timer.Seconds();
  result.planner = std::string(name());
  // Robustness accounting (ISSUE 8): what this run injected, retried and
  // degraded, as deltas of the process-wide counters. CampaignSession::Run
  // re-books over this with its wider bracket (final σ̂ included).
  const util::RobustnessCounters after = util::SnapshotRobustnessCounters();
  result.faults_injected = after.faults_injected - before.faults_injected;
  result.retries = after.retries - before.retries;
  result.fallbacks = after.fallbacks - before.fallbacks;
  // A fired run token is the run's outcome, whatever PlanImpl returned:
  // planners stop at their next boundary and surface partial state.
  if (result.status.ok() && config_.cancel != nullptr) {
    result.status = config_.cancel->Check();
  }
  if (result.total_cost == 0.0 && !result.seeds.empty()) {
    result.total_cost = problem.TotalCost(result.seeds);
  }
  if (result.rounds.empty() && !result.seeds.empty()) {
    for (int t = 1; t <= diffusion::LatestTiming(result.seeds); ++t) {
      diffusion::SeedGroup at_t = diffusion::SubgroupAt(result.seeds, t);
      if (at_t.empty()) continue;
      PlanRound round;
      round.promotion = t;
      round.spent = problem.TotalCost(at_t);
      round.seeds = std::move(at_t);
      result.rounds.push_back(std::move(round));
    }
  }
  return result;
}

}  // namespace imdpp::api
