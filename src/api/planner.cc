#include "api/planner.h"

#include <algorithm>

#include "util/fault_injection.h"
#include "util/timer.h"
#include "util/trace.h"

namespace imdpp::api {

void MergeMetrics(PlanResult& result, const util::MetricsSnapshot& delta) {
  result.metrics.Merge(delta);
  // Refresh the legacy scalar mirrors from the merged snapshot so both
  // views stay byte-for-byte interchangeable.
  const util::MetricsSnapshot& m = result.metrics;
  result.simulations = m.Counter(util::metric::kEvalSimulations);
  result.rounds_simulated = m.Counter(util::metric::kEvalRoundsSimulated);
  result.rounds_skipped = m.Counter(util::metric::kEvalRoundsSkipped);
  result.memo_hits = m.Counter(util::metric::kEvalMemoHits);
  result.prep_builds = m.Counter(util::metric::kPrepBuilds);
  result.prep_reuses = m.Counter(util::metric::kPrepReuses);
  result.prep_millis = m.Number(util::metric::kPrepMillis);
  result.faults_injected = m.Counter(util::metric::kFaultInjected);
  result.retries = m.Counter(util::metric::kFaultRetries);
  result.fallbacks = m.Counter(util::metric::kFaultFallbacks);
}

void BookRobustness(PlanResult& result,
                    const util::RobustnessCounters& before,
                    const util::RobustnessCounters& after) {
  // Overwrite, not add: a session's wider bracket (final σ̂ included)
  // re-books over the delta Plan() recorded inside it.
  result.metrics.SetCounter(util::metric::kFaultInjected,
                            after.faults_injected - before.faults_injected);
  result.metrics.SetCounter(util::metric::kFaultRetries,
                            after.retries - before.retries);
  result.metrics.SetCounter(util::metric::kFaultFallbacks,
                            after.fallbacks - before.fallbacks);
  result.faults_injected = after.faults_injected - before.faults_injected;
  result.retries = after.retries - before.retries;
  result.fallbacks = after.fallbacks - before.fallbacks;
}

PlanResult Planner::Plan(const diffusion::Problem& problem) const {
  Timer timer;
  const util::RobustnessCounters before = util::SnapshotRobustnessCounters();
  PlanResult result;
  {
    util::trace::Span span("phase.select");
    result = PlanImpl(problem);
  }
  result.wall_seconds = timer.Seconds();
  result.planner = std::string(name());
  // Robustness accounting (ISSUE 8): what this run injected, retried and
  // degraded, as deltas of the process-wide counters. CampaignSession::Run
  // re-books over this with its wider bracket (final σ̂ included).
  BookRobustness(result, before, util::SnapshotRobustnessCounters());
  // A fired run token is the run's outcome, whatever PlanImpl returned:
  // planners stop at their next boundary and surface partial state.
  if (result.status.ok() && config_.cancel != nullptr) {
    result.status = config_.cancel->Check();
  }
  if (result.total_cost == 0.0 && !result.seeds.empty()) {
    result.total_cost = problem.TotalCost(result.seeds);
  }
  if (result.rounds.empty() && !result.seeds.empty()) {
    for (int t = 1; t <= diffusion::LatestTiming(result.seeds); ++t) {
      diffusion::SeedGroup at_t = diffusion::SubgroupAt(result.seeds, t);
      if (at_t.empty()) continue;
      PlanRound round;
      round.promotion = t;
      round.spent = problem.TotalCost(at_t);
      round.seeds = std::move(at_t);
      result.rounds.push_back(std::move(round));
    }
  }
  return result;
}

}  // namespace imdpp::api
