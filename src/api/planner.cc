#include "api/planner.h"

#include <algorithm>

#include "util/timer.h"

namespace imdpp::api {

PlanResult Planner::Plan(const diffusion::Problem& problem) const {
  Timer timer;
  PlanResult result = PlanImpl(problem);
  result.wall_seconds = timer.Seconds();
  result.planner = std::string(name());
  if (result.total_cost == 0.0 && !result.seeds.empty()) {
    result.total_cost = problem.TotalCost(result.seeds);
  }
  if (result.rounds.empty() && !result.seeds.empty()) {
    for (int t = 1; t <= diffusion::LatestTiming(result.seeds); ++t) {
      diffusion::SeedGroup at_t = diffusion::SubgroupAt(result.seeds, t);
      if (at_t.empty()) continue;
      PlanRound round;
      round.promotion = t;
      round.spent = problem.TotalCost(at_t);
      round.seeds = std::move(at_t);
      result.rounds.push_back(std::move(round));
    }
  }
  return result;
}

}  // namespace imdpp::api
