// The unified planner layer: one config, one result type, one abstract
// interface for every IMDPP algorithm (Dysim, Adaptive Dysim, SMK nominee
// selection, and the Sec. VI-A comparison baselines).
//
// Every planner consumes the same PlannerConfig — shared search/eval
// effort, candidate pruning, campaign-simulation settings, the Dysim
// clustering/market knobs, and ONE master RNG seed — plus a small
// per-algorithm option sub-struct. Every planner produces the same
// PlanResult, so harnesses, examples and future scenarios compare
// algorithms without per-algorithm plumbing. Concrete planners live
// behind the string-keyed PlannerRegistry (registry.h); CampaignSession
// (session.h) bundles a Dataset + Problem + shared evaluation engine.
#ifndef IMDPP_API_PLANNER_H_
#define IMDPP_API_PLANNER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "cluster/nominee_clustering.h"
#include "cluster/target_market.h"
#include "core/dysim.h"
#include "core/market_order.h"
#include "core/nominee_selection.h"
#include "diffusion/adaptive_eval.h"
#include "diffusion/campaign_simulator.h"
#include "diffusion/problem.h"
#include "diffusion/seed.h"
#include "prep/prep.h"
#include "util/cancel.h"
#include "util/fault_injection.h"
#include "util/metrics.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace imdpp::api {

/// One configuration for all algorithms. The shared block applies to every
/// planner; the per-algorithm sub-structs are consumed only by their
/// namesake. The master `seed` overrides `campaign.base_seed` and derives
/// every auxiliary stream (e.g. the adaptive "reality" draw), so a fixed
/// PlannerConfig makes every planner fully deterministic.
struct PlannerConfig {
  /// Monte-Carlo samples during search and for the final σ̂ report.
  int selection_samples = 12;
  int eval_samples = 48;

  /// Candidate-universe pruning (0 = exhaustive V x I).
  core::CandidateConfig candidates;

  /// Diffusion model / step caps for every simulation.
  diffusion::CampaignConfig campaign;

  /// TMI clustering and target-market knobs (Dysim family).
  cluster::ClusteringConfig clustering;
  cluster::MarketPlanConfig market;

  /// Master RNG seed for every stochastic choice.
  uint64_t seed = 0x1234abcdULL;

  /// Executor count for every Monte-Carlo sample loop the planner (or its
  /// session) builds: util::kAutoThreads = hardware concurrency, 0 = serial
  /// fallback. Purely a throughput knob — estimates are bit-identical for
  /// every value (see diffusion::MonteCarloEngine).
  int num_threads = util::kAutoThreads;

  /// Optional worker pool shared by every engine the planner builds.
  /// CampaignSession::Run injects the session's pool here, so one set of
  /// threads serves planning and evaluation alike; null = planners create
  /// (and share internally) their own.
  std::shared_ptr<util::ThreadPool> shared_pool;

  /// Wall-clock budget for one Plan() call in milliseconds (0 = none).
  /// CampaignSession::Run turns this into a deadline token; past the
  /// deadline the run stops at the next shard / iteration boundary and
  /// reports kDeadlineExceeded. Purely a cutoff — runs that finish in
  /// time are bit-identical to deadline-free runs.
  int64_t deadline_ms = 0;

  /// Cooperative cancellation/deadline token threaded through every
  /// engine, prep build and greedy loop the run touches (ISSUE 8). Null =
  /// the session derives one from deadline_ms (or the backends make
  /// private ones). Fire it from any thread to stop the run promptly with
  /// kCancelled; the session and pool stay reusable.
  std::shared_ptr<util::CancelToken> cancel;

  /// prep:: artifact-layer knobs (market structure built once per
  /// dataset; see prep/prep.h).
  struct PrepOptions {
    /// false = bypass the session's artifact cache and rebuild per run
    /// (the determinism tests pin cold == warm with this).
    bool cache = true;
    /// Gates the build's per-source Dijkstra/BFS sweeps: <= 1 runs them
    /// inline, anything else on the shared worker pool (when one
    /// exists). Artifacts are bit-identical for every value.
    int build_threads = util::kAutoThreads;
  };
  PrepOptions prep;

  /// Optional artifact cache shared across runs. CampaignSession::Run
  /// injects the session's cache here, so Run/Compare/SetProblem and
  /// cli::RunSweep reuse one build per dataset; null = planners build a
  /// standalone artifact per run.
  std::shared_ptr<prep::PrepCache> prep_cache;

  /// σ-evaluation backend selection (diffusion/sigma_backend.h): which
  /// registered estimator answers every σ̂ / market query the planners
  /// make. Purely an estimation knob — candidate logic is unchanged.
  struct EvalOptions {
    /// Registry key: "mc" (Monte-Carlo reference, the default) or "ris"
    /// (reverse-reachable sketches; faster, statically approximate).
    std::string backend = "mc";
    /// Sketch count θ for the "ris" backend (ignored by "mc").
    int ris_sketches = 4096;
    /// Opt-in graceful degradation (ISSUE 8): registry key of the backend
    /// a failing primary falls back to (today: "ris" degrading to its
    /// embedded "mc" engine when the sketch build fails). Empty = a
    /// backend failure fails the run.
    std::string fallback_backend;
    /// Variance-adaptive sequential stopping for the greedy argmax loops
    /// (diffusion/adaptive_eval.h; the `eval.adaptive.*` config keys and
    /// the --adaptive CLI flag). Off by default: the fixed-count
    /// reference loops stay bit-identical to prior releases.
    diffusion::AdaptiveEvalConfig adaptive;
  };
  EvalOptions eval;

  /// Optional RIS-sketch artifact cache shared across runs (the "ris"
  /// analogue of prep_cache). CampaignSession::Run injects the session's
  /// cache here; null = each backend builds a standalone sketch set.
  std::shared_ptr<prep::RisSketchCache> sketch_cache;

  struct DysimOptions {
    core::MarketOrderMetric order =
        core::MarketOrderMetric::kAntagonisticExtent;
    int dr_max_depth = 3;
    bool use_target_markets = true;   ///< Fig. 10 "w/o TM" when false
    bool use_item_priority = true;    ///< Fig. 10 "w/o IP" when false
    bool use_theorem5_guard = true;
  };
  DysimOptions dysim;

  struct AdaptiveOptions {
    /// Net substitutable relevance above which two same-round items count
    /// as antagonistic.
    double antagonism_threshold = 0.25;
  };
  AdaptiveOptions adaptive;

  struct PsOptions {
    double path_threshold = 0.01;
    int max_hops = 8;
    double covered_discount = 0.2;
  };
  PsOptions ps;

  struct OptOptions {
    int max_candidates = 10;  ///< strongest singletons kept (0 = all)
    int max_seeds = 3;        ///< seed-group size cap (0 = unbounded)
    /// Extra nominees force-included in the pruned pool (e.g. a
    /// heuristic's solution, so OPT provably upper-bounds it).
    std::vector<diffusion::Nominee> extra_candidates;
  };
  OptOptions opt;
};

/// Seeds placed in one promotion round, with what they spent and achieved.
/// Adaptive planning fills realized_sigma per observed round; static
/// planners derive rounds from the final schedule (realized_sigma = 0).
struct PlanRound {
  int promotion = 0;  ///< 1-based t
  diffusion::SeedGroup seeds;
  double spent = 0.0;
  double realized_sigma = 0.0;
};

/// One result type for all algorithms.
struct PlanResult {
  std::string planner;          ///< registry name that produced this plan
  diffusion::SeedGroup seeds;   ///< the full schedule (u, x, t)
  double sigma = 0.0;           ///< σ̂ at eval_samples
  double total_cost = 0.0;      ///< Σ c_{u,x} over the seeds
  int64_t simulations = 0;      ///< simulator invocations spent planning
  /// Promotion-round accounting (engines the planner owned): rounds
  /// executed vs rounds avoided (unseeded-round skips, checkpoint
  /// resumes, σ-memo hits) relative to naive T-rounds-per-sample
  /// evaluation. 0/0 for planners that do not report it.
  int64_t rounds_simulated = 0;
  int64_t rounds_skipped = 0;
  int64_t memo_hits = 0;        ///< σ estimates answered from the memo
  /// prep:: artifact accounting: whether this run built the market
  /// structure (1/0) or reused a cached bundle (0/1), and the
  /// milliseconds of artifact construction it paid. 0/0/0 for planners
  /// that consume no prep structure (bgrd, hag, drhga, opt, smk,
  /// cr_greedy).
  int64_t prep_builds = 0;
  int64_t prep_reuses = 0;
  double prep_millis = 0.0;     ///< wall-clock, excluded from byte-stable output
  double wall_seconds = 0.0;    ///< wall-clock planning time
  std::vector<PlanRound> rounds;  ///< per-round diagnostics

  /// Dysim-family diagnostics (0 / empty for planners without TMI).
  std::vector<diffusion::Nominee> nominees;
  size_t num_markets = 0;
  size_t num_groups = 0;

  /// How the run ended (ISSUE 8): OkStatus() for a completed plan;
  /// kCancelled / kDeadlineExceeded when the run's token fired; the
  /// injected or real error otherwise. A non-ok result's seeds/sigma are
  /// whatever partial state existed at the stop and must not be compared.
  util::Status status;
  /// Robustness accounting for this run: deltas of the process-wide
  /// counters (util/fault_injection.h) across the run. 0/0/0 on the happy
  /// path.
  int64_t faults_injected = 0;  ///< armed fault points that fired
  int64_t retries = 0;          ///< transient-fault retry attempts
  int64_t fallbacks = 0;        ///< graceful degradations taken

  /// The unified metrics snapshot for this run (ISSUE 9): every counter
  /// above plus the σ̂ histogram, backend-specific counters, and whatever
  /// the armed MetricRegistry recorded. The scalar fields above are
  /// mirrors refreshed by MergeMetrics / BookRobustness — read either,
  /// they agree; report:: serializes from here.
  util::MetricsSnapshot metrics;
};

/// Folds a metrics delta (a planner-internal result's snapshot, or the
/// armed registry's) into `result.metrics`, then refreshes the legacy
/// scalar mirrors (simulations, rounds_*, memo_hits, prep_*, faults/
/// retries/fallbacks) from the merged snapshot so both views agree. The
/// single seam every counter hand-off goes through (ISSUE 9).
void MergeMetrics(PlanResult& result, const util::MetricsSnapshot& delta);

/// Books the robustness-counter delta `after - before` into the result as
/// absolute values (SetCounter overwrite, so a session's wider bracket
/// re-books over Plan()'s narrower one) and syncs the scalar mirrors.
void BookRobustness(PlanResult& result,
                    const util::RobustnessCounters& before,
                    const util::RobustnessCounters& after);

/// Maps the unified config onto Dysim's native struct (folding the master
/// seed into the campaign settings). Exposed for tooling that drives
/// core::RunTmi directly, e.g. `imdpp datasets --prep`.
core::DysimConfig ToDysimConfig(const PlannerConfig& config);

/// Maps the unified config onto a σ-backend spec (registry key, backend
/// knobs, shared sketch cache) for diffusion::MakeSigmaBackend.
diffusion::SigmaBackendSpec ToBackendSpec(const PlannerConfig& config);

/// Abstract planner. Construction binds a PlannerConfig; Plan() may be
/// called repeatedly on different problems. Plan() times the run and
/// backfills the result fields every algorithm shares (name, cost,
/// per-round grouping), so concrete planners only fill what is theirs.
class Planner {
 public:
  explicit Planner(PlannerConfig config) : config_(std::move(config)) {}
  virtual ~Planner() = default;

  Planner(const Planner&) = delete;
  Planner& operator=(const Planner&) = delete;

  /// Registry key of the concrete algorithm (e.g. "dysim").
  virtual std::string_view name() const = 0;

  PlanResult Plan(const diffusion::Problem& problem) const;

  const PlannerConfig& config() const { return config_; }

 protected:
  virtual PlanResult PlanImpl(const diffusion::Problem& problem) const = 0;

 private:
  PlannerConfig config_;
};

}  // namespace imdpp::api

#endif  // IMDPP_API_PLANNER_H_
