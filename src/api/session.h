// CampaignSession: the one-stop façade the harnesses and examples want.
// Owns a data::Dataset, the Problem view currently under study, and a
// shared evaluation backend (diffusion::SigmaBackend), and can run or
// compare any set of registered planners on them:
//
//   api::CampaignSession session(data::MakeYelpLike(0.5));
//   session.SetProblem(/*budget=*/150.0, /*num_promotions=*/5);
//   api::PlanResult plan = session.Run("dysim");
//   for (api::PlanResult& r : session.Compare({"dysim", "bgrd", "ps"})) ...
//
// Every result's σ̂ is re-estimated on the session's shared engine, so a
// comparison is paired (same samples, same coin flips) and fair.
#ifndef IMDPP_API_SESSION_H_
#define IMDPP_API_SESSION_H_

#include <memory>
#include <string>
#include <vector>

#include "api/registry.h"
#include "data/dataset.h"

namespace imdpp::api {

/// A paired comparison: every planner's PlanResult on one problem, scored
/// on one shared engine (same samples, same coin flips), plus the problem
/// coordinates the comparison ran at — the unit src/report serializes.
/// Container sugar forwards to `results` so range-for/indexing read like
/// the plain vector Compare() used to return.
struct CompareResult {
  std::string dataset;
  double budget = 0.0;
  int num_promotions = 0;
  std::vector<PlanResult> results;

  size_t size() const { return results.size(); }
  PlanResult& operator[](size_t i) { return results[i]; }
  const PlanResult& operator[](size_t i) const { return results[i]; }
  auto begin() { return results.begin(); }
  auto end() { return results.end(); }
  auto begin() const { return results.begin(); }
  auto end() const { return results.end(); }
};

class CampaignSession {
 public:
  /// Takes ownership of the dataset. No problem is configured yet —
  /// call SetProblem (or use the budget/promotions constructor).
  explicit CampaignSession(data::Dataset dataset, PlannerConfig config = {});

  /// Convenience: owns the dataset and configures the problem in one go.
  CampaignSession(data::Dataset dataset, double budget, int num_promotions,
                  PlannerConfig config = {});

  /// (Re)configures the problem view; invalidates the shared engine.
  /// A call that changes nothing (same budget/promotions/params, no meta
  /// subset active, problem not mutated since) is a no-op: the engine and
  /// the prep-artifact cache stay warm, so sweep loops need no
  /// caller-side dedupe.
  void SetProblem(double budget, int num_promotions,
                  pin::PerceptionParams params = {});

  /// Problem restricted to the first metas of `meta_indices` (sensitivity
  /// study, Fig. 13). The session owns the restricted relevance model.
  void SetProblemWithMetaSubset(const std::vector<int>& meta_indices,
                                double budget, int num_promotions,
                                pin::PerceptionParams params = {});

  /// Plans with the named registered planner, then re-estimates σ̂ on the
  /// shared engine. Failures are structured (ISSUE 8), never aborts: an
  /// unknown name returns a kNotFound result, a fired deadline /
  /// cancellation / injected fault returns the token's reason in
  /// PlanResult::status with whatever partial state existed — and the
  /// session (engine, caches, pool) stays reusable for the next run.
  PlanResult Run(const std::string& planner_name);

  /// Same, but plans under `config` instead of the session's config
  /// (ablation/sensitivity sweeps). Scoring stays on the shared engine,
  /// so variants remain comparable to each other and to Run(name).
  PlanResult Run(const std::string& planner_name,
                 const PlannerConfig& config);

  /// Runs every named planner on the current problem.
  CompareResult Compare(const std::vector<std::string>& names);

  /// σ̂ of an arbitrary schedule on the shared engine (eval_samples).
  double Sigma(const diffusion::SeedGroup& seeds);

  const data::Dataset& dataset() const { return dataset_; }
  const diffusion::Problem& problem() const { return problem_; }

  /// Mutable problem access for scenario tweaks (e.g. flattening item
  /// importance); invalidates the shared engine.
  diffusion::Problem& mutable_problem();

  const PlannerConfig& config() const { return config_; }
  /// Mutable config access; invalidates the shared engine (the campaign
  /// settings and eval_samples feed it).
  PlannerConfig& mutable_config();

  /// The shared evaluation backend (built lazily from the current problem
  /// and config; config_.eval.backend picks the estimator).
  diffusion::SigmaBackend& engine();

 private:
  /// The session-wide worker pool, built lazily for `num_threads`
  /// executors (resized if a later caller asks for a different count).
  /// One set of threads backs the shared engine AND every engine the
  /// planners build during Run/Compare — no per-engine respawn.
  std::shared_ptr<util::ThreadPool> SharedPool(int num_threads);

  data::Dataset dataset_;
  PlannerConfig config_;
  std::unique_ptr<kg::RelevanceModel> relevance_override_;
  diffusion::Problem problem_;
  std::unique_ptr<diffusion::SigmaBackend> engine_;
  std::shared_ptr<util::ThreadPool> pool_;
  int pool_threads_ = 0;  ///< resolved thread count pool_ was built for
  /// The session-wide prep-artifact cache, injected into every planner
  /// Run/Compare executes: market structure is built once per dataset
  /// (per structural config) and reused across budgets, planners and
  /// SetProblem calls. Keyed by content, so problem mutations that change
  /// the structure rebuild and ones that don't (budget, importance) hit.
  std::shared_ptr<prep::PrepCache> prep_cache_;
  /// The session-wide RIS-sketch cache, injected the same way: the "ris"
  /// backend's sketch sets are content-keyed artifacts reused across
  /// planners and runs (a no-op for "mc").
  std::shared_ptr<prep::RisSketchCache> sketch_cache_;
  /// Set by mutable_problem(): the problem may have diverged from the
  /// (budget, promotions, params) it was built from, so the next
  /// SetProblem must rebuild even if those coordinates match.
  bool problem_dirty_ = false;
};

}  // namespace imdpp::api

#endif  // IMDPP_API_SESSION_H_
