// The built-in planner adapters: one thin class per algorithm, mapping the
// unified PlannerConfig/PlanResult onto each algorithm's native structs.
// This file is the ONLY place that knows every per-algorithm header; all
// harnesses, examples and sessions go through the registry.
#include <memory>
#include <utility>

#include "api/registry.h"
#include "baselines/bgrd.h"
#include "baselines/cr_greedy.h"
#include "baselines/drhga.h"
#include "baselines/hag.h"
#include "baselines/opt.h"
#include "baselines/ps.h"
#include "core/adaptive_dysim.h"
#include "core/dysim.h"
#include "core/smk.h"
#include "diffusion/sigma_backend.h"
#include "util/hash.h"

namespace imdpp::api {
namespace {

// ------------------------------------------------------ config adaptation

/// Campaign settings with the master seed folded in: one PlannerConfig
/// seed drives every coin flip of every planner.
diffusion::CampaignConfig MakeCampaign(const PlannerConfig& c) {
  diffusion::CampaignConfig campaign = c.campaign;
  campaign.base_seed = c.seed;
  return campaign;
}

baselines::BaselineConfig ToBaselineConfig(const PlannerConfig& c) {
  baselines::BaselineConfig cfg;
  cfg.selection_samples = c.selection_samples;
  cfg.eval_samples = c.eval_samples;
  cfg.candidates = c.candidates;
  cfg.campaign = MakeCampaign(c);
  cfg.backend = ToBackendSpec(c);
  cfg.num_threads = c.num_threads;
  cfg.shared_pool = c.shared_pool;
  cfg.prep_cache = c.prep_cache;
  cfg.prep_cache_enabled = c.prep.cache;
  cfg.prep_build_threads = c.prep.build_threads;
  return cfg;
}

PlanResult FromBaseline(baselines::BaselineResult r) {
  PlanResult out;
  out.seeds = std::move(r.seeds);
  out.sigma = r.sigma;
  out.total_cost = r.total_cost;
  MergeMetrics(out, r.metrics);
  out.status = std::move(r.status);
  return out;
}

// --------------------------------------------------------- Dysim family

class DysimPlanner : public Planner {
 public:
  using Planner::Planner;
  std::string_view name() const override { return "dysim"; }

 protected:
  PlanResult PlanImpl(const diffusion::Problem& problem) const override {
    core::DysimResult r = core::RunDysim(problem, ToDysimConfig(config()));
    PlanResult out;
    out.seeds = std::move(r.seeds);
    out.sigma = r.sigma;
    out.total_cost = r.total_cost;
    MergeMetrics(out, r.metrics);
    out.nominees = std::move(r.nominees);
    out.num_markets = r.plan.markets.size();
    out.num_groups = r.plan.groups.size();
    out.status = std::move(r.status);
    return out;
  }
};
IMDPP_REGISTER_PLANNER("dysim", DysimPlanner);

class AdaptivePlanner : public Planner {
 public:
  using Planner::Planner;
  std::string_view name() const override { return "adaptive"; }

 protected:
  PlanResult PlanImpl(const diffusion::Problem& problem) const override {
    core::AdaptiveConfig cfg;
    cfg.base = ToDysimConfig(config());
    cfg.reality_seed = HashTuple(config().seed, 0xada9'711eULL);
    cfg.antagonism_threshold = config().adaptive.antagonism_threshold;
    core::AdaptiveResult r = core::RunAdaptiveDysim(problem, cfg);

    PlanResult out;
    out.seeds = std::move(r.seeds);
    out.total_cost = r.total_spent;
    MergeMetrics(out, r.metrics);
    out.status = std::move(r.status);
    for (core::AdaptiveRound& round : r.rounds) {
      PlanRound pr;
      pr.promotion = round.promotion;
      pr.seeds = std::move(round.seeds);
      pr.spent = round.spent;
      pr.realized_sigma = round.realized_sigma;
      out.rounds.push_back(std::move(pr));
    }
    // A failed run keeps its partial trajectory; nothing left to
    // re-estimate.
    if (!out.status.ok()) return out;
    // The adaptive run reports one realized trajectory; re-estimate the
    // final schedule's σ̂ from the initial state so `sigma` means the same
    // thing for every planner.
    std::unique_ptr<diffusion::SigmaBackend> eval =
        diffusion::MakeSigmaBackend(ToBackendSpec(config()), problem,
                                    MakeCampaign(config()),
                                    config().eval_samples,
                                    config().num_threads,
                                    config().shared_pool);
    out.sigma = eval->Sigma(out.seeds);
    util::MetricsSnapshot final_eval;
    eval->AddMetrics(final_eval);
    MergeMetrics(out, final_eval);
    return out;
  }
};
IMDPP_REGISTER_PLANNER("adaptive", AdaptivePlanner);

// ------------------------------------------- selection-only core planners

/// Shares the select-then-finalize shape of the SMK and CR-Greedy
/// planners: build the candidate universe, pick nominees with `select`,
/// time them with `schedule`, report σ̂ at eval_samples.
template <typename SelectFn, typename ScheduleFn>
PlanResult SelectAndFinalize(const diffusion::Problem& problem,
                             const PlannerConfig& config,
                             const SelectFn& select,
                             const ScheduleFn& schedule) {
  // Search and final-eval engines share one worker pool (the session's
  // when provided); the search engine memoizes σ so the selection loops'
  // re-checks of identical seed vectors cost nothing.
  std::shared_ptr<util::ThreadPool> pool = config.shared_pool;
  if (pool == nullptr) pool = util::MakeWorkerPool(config.num_threads);
  std::unique_ptr<diffusion::SigmaBackend> search_owner =
      diffusion::MakeSigmaBackend(ToBackendSpec(config), problem,
                                  MakeCampaign(config),
                                  config.selection_samples,
                                  config.num_threads, pool);
  diffusion::SigmaBackend& search = *search_owner;
  search.EnableSigmaMemo();
  std::vector<diffusion::Nominee> candidates =
      core::BuildCandidateUniverse(problem, config.candidates);
  core::SelectionResult sel = select(search, candidates);
  diffusion::SeedGroup seeds = schedule(search, sel.nominees);

  PlanResult out;
  std::unique_ptr<diffusion::SigmaBackend> eval_owner =
      diffusion::MakeSigmaBackend(ToBackendSpec(config), problem,
                                  MakeCampaign(config), config.eval_samples,
                                  config.num_threads, pool);
  diffusion::SigmaBackend& eval = *eval_owner;
  out.sigma = eval.Sigma(seeds);
  out.seeds = std::move(seeds);
  out.total_cost = problem.TotalCost(out.seeds);
  util::MetricsSnapshot engines;
  search.AddMetrics(engines);
  eval.AddMetrics(engines);
  MergeMetrics(out, engines);
  out.nominees = std::move(sel.nominees);
  return out;
}

diffusion::SeedGroup AllInFirstPromotion(
    const std::vector<diffusion::Nominee>& nominees) {
  diffusion::SeedGroup seeds;
  seeds.reserve(nominees.size());
  for (const diffusion::Nominee& n : nominees) {
    seeds.push_back({n.user, n.item, 1});
  }
  return seeds;
}

class SmkPlanner : public Planner {
 public:
  using Planner::Planner;
  std::string_view name() const override { return "smk"; }

 protected:
  PlanResult PlanImpl(const diffusion::Problem& problem) const override {
    return SelectAndFinalize(
        problem, config(),
        [&](const diffusion::SigmaBackend& engine,
            const std::vector<diffusion::Nominee>& candidates) {
          return core::SelectNomineesSmk(engine, problem, candidates,
                                         problem.budget);
        },
        [](const diffusion::SigmaBackend&,
           const std::vector<diffusion::Nominee>& nominees) {
          return AllInFirstPromotion(nominees);
        });
  }
};
IMDPP_REGISTER_PLANNER("smk", SmkPlanner);

class CrGreedyPlanner : public Planner {
 public:
  using Planner::Planner;
  std::string_view name() const override { return "cr_greedy"; }

 protected:
  PlanResult PlanImpl(const diffusion::Problem& problem) const override {
    return SelectAndFinalize(
        problem, config(),
        [&](const diffusion::SigmaBackend& engine,
            const std::vector<diffusion::Nominee>& candidates) {
          return core::SelectNominees(engine, problem, candidates,
                                      problem.budget);
        },
        [this](const diffusion::SigmaBackend& engine,
               const std::vector<diffusion::Nominee>& nominees) {
          return baselines::CrGreedyTimings(engine, nominees,
                                            config().eval.adaptive);
        });
  }
};
IMDPP_REGISTER_PLANNER("cr_greedy", CrGreedyPlanner);

// ----------------------------------------------------- Sec. VI-A baselines

class BgrdPlanner : public Planner {
 public:
  using Planner::Planner;
  std::string_view name() const override { return "bgrd"; }

 protected:
  PlanResult PlanImpl(const diffusion::Problem& problem) const override {
    return FromBaseline(
        baselines::RunBgrd(problem, ToBaselineConfig(config())));
  }
};
IMDPP_REGISTER_PLANNER("bgrd", BgrdPlanner);

class HagPlanner : public Planner {
 public:
  using Planner::Planner;
  std::string_view name() const override { return "hag"; }

 protected:
  PlanResult PlanImpl(const diffusion::Problem& problem) const override {
    return FromBaseline(
        baselines::RunHag(problem, ToBaselineConfig(config())));
  }
};
IMDPP_REGISTER_PLANNER("hag", HagPlanner);

class DrhgaPlanner : public Planner {
 public:
  using Planner::Planner;
  std::string_view name() const override { return "drhga"; }

 protected:
  PlanResult PlanImpl(const diffusion::Problem& problem) const override {
    return FromBaseline(
        baselines::RunDrhga(problem, ToBaselineConfig(config())));
  }
};
IMDPP_REGISTER_PLANNER("drhga", DrhgaPlanner);

class PsPlanner : public Planner {
 public:
  using Planner::Planner;
  std::string_view name() const override { return "ps"; }

 protected:
  PlanResult PlanImpl(const diffusion::Problem& problem) const override {
    baselines::PsConfig cfg;
    static_cast<baselines::BaselineConfig&>(cfg) = ToBaselineConfig(config());
    cfg.path_threshold = config().ps.path_threshold;
    cfg.max_hops = config().ps.max_hops;
    cfg.covered_discount = config().ps.covered_discount;
    return FromBaseline(baselines::RunPs(problem, cfg));
  }
};
IMDPP_REGISTER_PLANNER("ps", PsPlanner);

class OptPlanner : public Planner {
 public:
  using Planner::Planner;
  std::string_view name() const override { return "opt"; }

 protected:
  PlanResult PlanImpl(const diffusion::Problem& problem) const override {
    baselines::OptConfig cfg;
    static_cast<baselines::BaselineConfig&>(cfg) = ToBaselineConfig(config());
    cfg.max_candidates = config().opt.max_candidates;
    cfg.max_seeds = config().opt.max_seeds;
    cfg.extra_candidates = config().opt.extra_candidates;
    return FromBaseline(baselines::RunOpt(problem, cfg));
  }
};
IMDPP_REGISTER_PLANNER("opt", OptPlanner);

}  // namespace

core::DysimConfig ToDysimConfig(const PlannerConfig& c) {
  core::DysimConfig cfg;
  cfg.selection_samples = c.selection_samples;
  cfg.eval_samples = c.eval_samples;
  cfg.candidates = c.candidates;
  cfg.clustering = c.clustering;
  cfg.market = c.market;
  cfg.order = c.dysim.order;
  cfg.dr_max_depth = c.dysim.dr_max_depth;
  cfg.use_target_markets = c.dysim.use_target_markets;
  cfg.use_item_priority = c.dysim.use_item_priority;
  cfg.use_theorem5_guard = c.dysim.use_theorem5_guard;
  cfg.campaign = MakeCampaign(c);
  cfg.backend = ToBackendSpec(c);
  cfg.num_threads = c.num_threads;
  cfg.shared_pool = c.shared_pool;
  cfg.prep_cache = c.prep_cache;
  cfg.prep_cache_enabled = c.prep.cache;
  cfg.prep_build_threads = c.prep.build_threads;
  return cfg;
}

diffusion::SigmaBackendSpec ToBackendSpec(const PlannerConfig& c) {
  diffusion::SigmaBackendSpec spec;
  spec.name = c.eval.backend;
  spec.ris_sketches = c.eval.ris_sketches;
  spec.sketch_cache = c.sketch_cache;
  spec.cancel = c.cancel;
  spec.fallback_backend = c.eval.fallback_backend;
  spec.adaptive = c.eval.adaptive;
  return spec;
}

namespace internal {
// Anchors this translation unit: the registry calls it, the linker keeps
// the self-registration statics above, static-archive or not.
void EnsureBuiltinPlanners() {}
}  // namespace internal

}  // namespace imdpp::api
