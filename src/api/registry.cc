#include "api/registry.h"

#include <algorithm>
#include <map>

#include "util/check.h"

namespace imdpp::api {
namespace {

// Meyers singleton: safe against static-initialization ordering with the
// self-registration statics in planners.cc.
std::map<std::string, PlannerRegistry::Factory, std::less<>>& Factories() {
  static auto* factories =
      new std::map<std::string, PlannerRegistry::Factory, std::less<>>();
  return *factories;
}

}  // namespace

bool PlannerRegistry::Register(std::string name, Factory factory) {
  IMDPP_CHECK(factory != nullptr);
  auto [it, inserted] = Factories().emplace(std::move(name), factory);
  if (!inserted) {
    std::fprintf(stderr, "duplicate planner registration: %s\n",
                 it->first.c_str());
    std::abort();
  }
  return true;
}

std::unique_ptr<Planner> PlannerRegistry::Create(std::string_view name,
                                                 const PlannerConfig& config) {
  internal::EnsureBuiltinPlanners();
  auto it = Factories().find(name);
  if (it == Factories().end()) return nullptr;
  return it->second(config);
}

std::unique_ptr<Planner> PlannerRegistry::CreateOrDie(
    std::string_view name, const PlannerConfig& config) {
  std::unique_ptr<Planner> planner = Create(name, config);
  if (planner == nullptr) {
    std::fprintf(stderr, "%s\n", UnknownMessage(name).c_str());
    std::abort();
  }
  return planner;
}

std::string PlannerRegistry::UnknownMessage(std::string_view name) {
  std::string msg = "unknown planner \"";
  msg += name;
  msg += "\"; registered:";
  for (const std::string& known : Names()) {
    msg += ' ';
    msg += known;
  }
  return msg;
}

bool PlannerRegistry::Has(std::string_view name) {
  internal::EnsureBuiltinPlanners();
  return Factories().find(name) != Factories().end();
}

std::vector<std::string> PlannerRegistry::Names() {
  internal::EnsureBuiltinPlanners();
  std::vector<std::string> names;
  names.reserve(Factories().size());
  for (const auto& [name, factory] : Factories()) names.push_back(name);
  return names;  // std::map iterates sorted
}

}  // namespace imdpp::api
