#include "api/registry.h"

#include <cstdio>
#include <cstdlib>

#include "util/registry.h"

namespace imdpp::api {
namespace {

// Typed façade over the shared util::Registry contract (duplicate-name
// abort, sorted Names(), UnknownMessage with sorted known keys). Meyers
// singleton: safe against static-initialization ordering with the
// self-registration statics in planners.cc.
util::Registry<PlannerRegistry::Factory>& Impl() {
  static auto* registry =
      new util::Registry<PlannerRegistry::Factory>("planner");
  return *registry;
}

}  // namespace

bool PlannerRegistry::Register(std::string name, Factory factory) {
  return Impl().Register(std::move(name), factory);
}

std::unique_ptr<Planner> PlannerRegistry::Create(std::string_view name,
                                                 const PlannerConfig& config) {
  internal::EnsureBuiltinPlanners();
  const Factory* factory = Impl().Find(name);
  if (factory == nullptr) return nullptr;
  return (*factory)(config);
}

std::unique_ptr<Planner> PlannerRegistry::CreateOrDie(
    std::string_view name, const PlannerConfig& config) {
  std::unique_ptr<Planner> planner = Create(name, config);
  if (planner == nullptr) {
    std::fprintf(stderr, "%s\n", UnknownMessage(name).c_str());
    std::abort();
  }
  return planner;
}

std::string PlannerRegistry::UnknownMessage(std::string_view name) {
  internal::EnsureBuiltinPlanners();
  return Impl().UnknownMessage(name);
}

bool PlannerRegistry::Has(std::string_view name) {
  internal::EnsureBuiltinPlanners();
  return Impl().Has(name);
}

std::vector<std::string> PlannerRegistry::Names() {
  internal::EnsureBuiltinPlanners();
  return Impl().Names();
}

}  // namespace imdpp::api
