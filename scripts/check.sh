#!/usr/bin/env bash
# Tier-1 verify + smoke: configure, build, ctest, and run the quickstart
# example end-to-end. This is what CI runs; run it locally before pushing.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

echo "== configure =="
cmake -B "$BUILD_DIR" -S .

echo "== build =="
cmake --build "$BUILD_DIR" -j "$JOBS"

echo "== ctest =="
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"

echo "== smoke: examples/quickstart =="
"$BUILD_DIR/quickstart"

echo "== OK =="
