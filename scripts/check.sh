#!/usr/bin/env bash
# Tier-1 verify + smoke: configure, build, ctest, and run the quickstart
# example end-to-end — twice, diffing the runs as a determinism gate.
# This is what every CI matrix cell runs; run it locally before pushing.
#
# Env knobs (all optional):
#   BUILD_DIR                    build tree             (default: build)
#   BUILD_TYPE                   CMake build type       (default: Release)
#   IMDPP_SANITIZE               -fsanitize list, e.g. thread / address,undefined
#   CMAKE_CXX_COMPILER_LAUNCHER  e.g. ccache (forwarded to CMake)
#   CC / CXX                     compiler selection (read natively by CMake)
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
BUILD_TYPE="${BUILD_TYPE:-Release}"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

CMAKE_ARGS=(-DCMAKE_BUILD_TYPE="$BUILD_TYPE")
if [[ -n "${IMDPP_SANITIZE:-}" ]]; then
  CMAKE_ARGS+=(-DIMDPP_SANITIZE="$IMDPP_SANITIZE")
fi
if [[ -n "${CMAKE_CXX_COMPILER_LAUNCHER:-}" ]]; then
  CMAKE_ARGS+=(-DCMAKE_CXX_COMPILER_LAUNCHER="$CMAKE_CXX_COMPILER_LAUNCHER")
fi

echo "== configure ($BUILD_TYPE${IMDPP_SANITIZE:+, sanitize=$IMDPP_SANITIZE}) =="
cmake -B "$BUILD_DIR" -S . "${CMAKE_ARGS[@]}"

echo "== build =="
cmake --build "$BUILD_DIR" -j "$JOBS"

echo "== ctest =="
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"

echo "== imdpp-lint (determinism/locking invariants, tools/lint) =="
"$BUILD_DIR/imdpp-lint" src/ tools/

echo "== smoke: examples/quickstart (run twice, diff = determinism gate) =="
# Wall-clock lines differ run to run by construction; everything else
# (seeds, σ̂, schedules) must be byte-identical.
strip_timing() { sed -E 's/ in [0-9.]+s$//'; }
"$BUILD_DIR/quickstart" | strip_timing > "$BUILD_DIR/quickstart.run1.txt"
"$BUILD_DIR/quickstart" | strip_timing > "$BUILD_DIR/quickstart.run2.txt"
diff "$BUILD_DIR/quickstart.run1.txt" "$BUILD_DIR/quickstart.run2.txt"
cat "$BUILD_DIR/quickstart.run1.txt"

echo "== smoke: imdpp CLI quickstart (run twice, diff = determinism gate) =="
# The CLI emits no wall-clock fields by default, so identical invocations
# must produce byte-identical JSON.
"$BUILD_DIR/imdpp" plan --dataset yelp-like --planner dysim --budget 300 \
  --out "$BUILD_DIR/cli_plan.run1.json"
"$BUILD_DIR/imdpp" plan --dataset yelp-like --planner dysim --budget 300 \
  --out "$BUILD_DIR/cli_plan.run2.json"
diff "$BUILD_DIR/cli_plan.run1.json" "$BUILD_DIR/cli_plan.run2.json"
echo "imdpp plan output is byte-identical across runs"

echo "== smoke: imdpp sweep on configs/sweep_ci.json (twice + diff) =="
"$BUILD_DIR/imdpp" sweep --config configs/sweep_ci.json --quiet \
  --out "$BUILD_DIR/cli_sweep.run1.json" --csv "$BUILD_DIR/cli_sweep.csv"
"$BUILD_DIR/imdpp" sweep --config configs/sweep_ci.json --quiet \
  --out "$BUILD_DIR/cli_sweep.run2.json"
diff "$BUILD_DIR/cli_sweep.run1.json" "$BUILD_DIR/cli_sweep.run2.json"
echo "imdpp sweep output is byte-identical across runs"

echo "== smoke: imdpp datasets --prep (twice + diff) =="
# Prep-artifact stats carry no wall-clock fields by default, so the
# per-dataset structure report must be byte-identical across runs.
"$BUILD_DIR/imdpp" datasets --prep --dataset fig1-toy --budget 20 \
  --promotions 2 --selection-samples 4 --eval-samples 8 \
  --out "$BUILD_DIR/cli_prep.run1.json"
"$BUILD_DIR/imdpp" datasets --prep --dataset fig1-toy --budget 20 \
  --promotions 2 --selection-samples 4 --eval-samples 8 \
  --out "$BUILD_DIR/cli_prep.run2.json"
diff "$BUILD_DIR/cli_prep.run1.json" "$BUILD_DIR/cli_prep.run2.json"
echo "imdpp datasets --prep output is byte-identical across runs"

echo "== smoke: imdpp backends + a --backend ris plan (twice + diff) =="
# The backend listing is a pure registry dump (byte-stable), and a plan
# under the sketch backend must be as deterministic as one under mc.
"$BUILD_DIR/imdpp" backends > "$BUILD_DIR/cli_backends.run1.txt"
"$BUILD_DIR/imdpp" backends > "$BUILD_DIR/cli_backends.run2.txt"
diff "$BUILD_DIR/cli_backends.run1.txt" "$BUILD_DIR/cli_backends.run2.txt"
cat "$BUILD_DIR/cli_backends.run1.txt"
"$BUILD_DIR/imdpp" plan --dataset fig1-toy --planner dysim --budget 20 \
  --backend ris --selection-samples 4 --eval-samples 8 \
  --out "$BUILD_DIR/cli_plan_ris.run1.json"
"$BUILD_DIR/imdpp" plan --dataset fig1-toy --planner dysim --budget 20 \
  --backend ris --selection-samples 4 --eval-samples 8 \
  --out "$BUILD_DIR/cli_plan_ris.run2.json"
diff "$BUILD_DIR/cli_plan_ris.run1.json" "$BUILD_DIR/cli_plan_ris.run2.json"
echo "imdpp backends / --backend ris output is byte-identical across runs"

echo "== smoke: imdpp plan --adaptive (twice + diff) =="
# Variance-adaptive racing (eval.adaptive) must be exactly as
# deterministic as the fixed path: block-boundary decisions are a pure
# function of the candidate set, so two racing runs are byte-identical.
"$BUILD_DIR/imdpp" plan --dataset yelp-like --planner dysim --budget 300 \
  --adaptive --adaptive-budget 8 \
  --out "$BUILD_DIR/cli_plan_adaptive.run1.json"
"$BUILD_DIR/imdpp" plan --dataset yelp-like --planner dysim --budget 300 \
  --adaptive --adaptive-budget 8 \
  --out "$BUILD_DIR/cli_plan_adaptive.run2.json"
diff "$BUILD_DIR/cli_plan_adaptive.run1.json" \
  "$BUILD_DIR/cli_plan_adaptive.run2.json"
echo "imdpp plan --adaptive output is byte-identical across runs"

echo "== OK =="
